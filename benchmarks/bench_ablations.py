"""Ablation studies for the design choices DESIGN.md calls out.

Not tables from the paper — these quantify *why* the reproduction behaves
as it does: which transformation contributes what, how the blocking factor
interacts with cache capacity, and where IF-inspection stops paying.
"""

import numpy as np
import pytest

from repro.algorithms import lu_point_ir, matmul_guarded_ir, sparse_b
from repro.bench.experiments import (
    _plus_variant,
    derived_block_lu,
    matmul_ujif,
    scaled_size,
    table_t3_lu,
)
from repro.bench.harness import Table, measure
from repro.machine.cache import CacheConfig
from repro.machine.model import MachineModel, scaled_machine


def test_ablation_pipeline_contributions(benchmark, show):
    """Point -> blocked ("2") -> +UJ -> +UJ+SR: who contributes what."""
    m = scaled_machine(4)
    n, ks = 100, 8

    def run():
        from repro.analysis.context import context_for_path
        from repro.bench.experiments import _update_j_loop
        from repro.symbolic.assume import Assumptions
        from repro.transform import scalar_replace, unroll_and_jam

        base = Assumptions().assume_ge("N", 2).assume_ge("KS", 2)
        blocked = derived_block_lu()
        j2 = _update_j_loop(blocked)
        uj_only = unroll_and_jam(blocked, j2, 4, context_for_path(blocked, j2, base))
        full, _ = scalar_replace(uj_only, base)
        variants = {
            "point": (lu_point_ir(), {"N": n}),
            "blocked (Fig6)": (blocked, {"N": n, "KS": ks}),
            "blocked+UJ": (uj_only, {"N": n, "KS": ks}),
            "blocked+UJ+SR": (full, {"N": n, "KS": ks}),
        }
        return {k: measure(p, s, m) for k, (p, s) in variants.items()}

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        title="Ablation: transformation pipeline contributions (LU, N=100, KS=8)",
        paper_ref="design study (not a paper table)",
        machine=m.describe(),
        columns=("variant", "refs", "misses", "modeled_s", "speedup_vs_point"),
    )
    base_s = got["point"].modeled_seconds
    for k, r in got.items():
        t.add(variant=k, refs=r.refs, misses=r.misses, modeled_s=r.modeled_seconds,
              speedup_vs_point=base_s / r.modeled_seconds)
    show(t.title, t.render())
    # each stage must help (or at least not hurt)
    order = ["point", "blocked (Fig6)", "blocked+UJ", "blocked+UJ+SR"]
    times = [got[k].modeled_seconds for k in order]
    assert times[-1] < times[0]
    assert got["blocked+UJ+SR"].refs < got["blocked+UJ"].refs  # SR removes refs
    assert got["blocked (Fig6)"].misses <= got["point"].misses  # blocking removes misses


def test_ablation_blocksize_sweep(benchmark, show):
    """Modeled time of blocked+UJ+SR LU across blocking factors."""
    m = scaled_machine(4)
    n = 100
    factors = [2, 4, 8, 16, 32]

    def run():
        proc = _plus_variant(derived_block_lu())
        return {ks: measure(proc, {"N": n, "KS": ks}, m) for ks in factors}

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        title="Ablation: blocking-factor sweep (LU 2+, N=100)",
        paper_ref="design study",
        machine=m.describe(),
        columns=("KS", "misses", "modeled_s"),
    )
    for ks in factors:
        t.add(KS=ks, misses=got[ks].misses, modeled_s=got[ks].modeled_seconds)
    show(t.title, t.render())
    times = [got[ks].modeled_seconds for ks in factors]
    # the sweet spot is interior-ish: the extremes must not be the best
    best = min(times)
    assert min(times[0], times[-1]) > best * 0.999
    assert times[0] != best or times[-1] != best


def test_ablation_cache_capacity(benchmark, show):
    """Point LU miss counts across cache capacities (same trace)."""
    n = 64
    caps = [1024, 4096, 16384, 65536]

    def run():
        out = {}
        for cap in caps:
            mm = MachineModel("cap", CacheConfig(cap, 32, 4))
            out[cap] = measure(lu_point_ir(), {"N": n}, mm)
        return out

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        title="Ablation: cache-capacity sweep (point LU, N=64)",
        paper_ref="design study",
        machine="32B lines, 4-way, capacity varied",
        columns=("capacity", "misses", "miss_ratio"),
    )
    for cap in caps:
        t.add(capacity=cap, misses=got[cap].misses, miss_ratio=got[cap].miss_ratio)
    show(t.title, t.render())
    misses = [got[c].misses for c in caps]
    assert misses == sorted(misses, reverse=True), "misses must fall with capacity"
    # when the whole problem fits (64*64*8 = 32KB < 64KB), only cold misses
    assert got[65536].misses <= got[1024].misses / 3


def test_ablation_guard_density(benchmark, show):
    """Where does IF-inspection stop paying?  Sweep the guard-true
    frequency: at high density the executor does the same work as the
    original, so the win narrows toward the register-blocking floor."""
    m = scaled_machine(4)
    n = scaled_size(300, 4)
    freqs = [0.025, 0.1, 0.3, 0.6, 0.9]

    def run():
        orig = matmul_guarded_ir()
        ujif = matmul_ujif()
        out = {}
        for f in freqs:
            b = sparse_b(n, f, run_len=max(4, n // 8)).astype(np.float32)
            o = measure(orig, {"N": n}, m, arrays={"B": b})
            u = measure(ujif, {"N": n}, m, arrays={"B": b})
            out[f] = o.modeled_seconds / u.modeled_seconds
        return out

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        title="Ablation: IF-inspection win vs guard-true frequency",
        paper_ref="extends the Sec. 4 table's two frequencies",
        machine=m.describe(),
        columns=("frequency", "speedup"),
    )
    for f in freqs:
        t.add(frequency=f, speedup=got[f])
    show(t.title, t.render())
    assert all(s > 1.0 for s in got.values()), "UJ+IF should never lose here"
