"""Figure 11: block LU in extended Fortran (Sec. 6).

Parses the paper's BLOCK DO / IN DO / LAST listing, lowers it with (a) a
symbolic factor and (b) a machine-chosen factor, and checks the result is
exactly the Fig. 6 block algorithm.
"""

from repro.algorithms import lu_block_fig6_ir, lu_point_ir
from repro.frontend import parse_procedure
from repro.ir.pretty import to_fortran
from repro.ir.visit import loop_by_var, strip_labels
from repro.lang import choose_factor, lower_extensions
from repro.machine.model import RS6000_540, scaled_machine
from repro.runtime.validate import assert_equivalent
from repro.symbolic.simplify import simplify_procedure

FIG11 = """
SUBROUTINE BLU(N)
  DOUBLE PRECISION A(N,N)
  BLOCK DO K = 1,N-1
    IN K DO KK
      DO I = KK+1,N
        A(I,KK) = A(I,KK)/A(KK,KK)
      ENDDO
      DO J = KK+1,LAST(K)
        DO I = KK+1,N
          A(I,J) = A(I,J) - A(I,KK) * A(KK,J)
        ENDDO
      ENDDO
    ENDDO
    DO J = LAST(K)+1,N
      DO I = K+1,N
        IN K DO KK = K,MIN(LAST(K),I-1)
          A(I,J) = A(I,J) - A(I,KK) * A(KK,J)
        ENDDO
      ENDDO
    ENDDO
  ENDDO
END
"""


def test_fig11_lowering(benchmark, show):
    def run():
        proc = parse_procedure(FIG11)
        return lower_extensions(proc, factor="KS")

    lowered, factor = benchmark.pedantic(run, rounds=1, iterations=1)
    show("Figure 11 lowered (factor = KS)", to_fortran(lowered))
    # semantics: exactly the Fig. 6 block algorithm (and point LU)
    for n, ks in ((13, 4), (12, 4), (9, 3)):
        assert_equivalent(lu_block_fig6_ir(), lowered, {"N": n, "KS": ks})
        assert_equivalent(lu_point_ir(), lowered, {"N": n, "KS": ks})


def test_fig11_machine_chooses_factor(benchmark, show):
    """The point of the extension: the same source, different machines,
    different blocking factors — with no code change."""
    proc = parse_procedure(FIG11)
    benchmark.pedantic(
        lambda: choose_factor(proc, scaled_machine(4), {"N": 96}), rounds=1, iterations=1
    )
    rows = []
    for machine, n in ((scaled_machine(8), 48), (scaled_machine(4), 96), (RS6000_540, 300)):
        b = choose_factor(proc, machine, {"N": n})
        rows.append(f"{machine.describe():58s} N={n:4d} -> factor {b}")
        lowered, f = lower_extensions(proc, machine=machine, sizes={"N": n})
        if n <= 64:
            assert_equivalent(lu_point_ir(), lowered, {"N": n})
    show("Figure 11: machine-driven blocking factors", "\n".join(rows))
    # bigger effective cache must never shrink the factor
    small = choose_factor(proc, scaled_machine(8), {"N": 64})
    big = choose_factor(proc, RS6000_540, {"N": 64})
    assert big >= small
