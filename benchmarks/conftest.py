"""Benchmark-suite configuration.

Every benchmark prints its reproduction table/figure to stdout (run with
``-s`` to see them live); the same tables are collected into EXPERIMENTS.md
by ``python -m repro.bench.report``.
"""

import pytest


@pytest.fixture(scope="session")
def show():
    """Print helper that survives capture (section banner + payload)."""

    def _show(title: str, payload: str) -> None:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{payload}\n")

    return _show
