"""Figures 1, 2 and 5: iteration-space and data-space diagrams.

Regenerated from the real analyses — Fig. 1 by enumerating the strip-mined
triangular space, Figs. 2/5 from bounded-regular-section computations —
and checked against the paper's geometric claims.
"""

from repro.bench.figures import (
    figure1_iteration_space,
    figure2_sections,
    figure5_sections,
)
from repro.ir.pretty import fmt_expr


def test_fig01_triangular_iteration_space(benchmark, show):
    points, art = benchmark.pedantic(
        lambda: figure1_iteration_space(n=12, strip=4), rounds=1, iterations=1
    )
    show("Figure 1: upper-left triangular iteration space (N=12, IS=4)", art)
    # geometric claims: everything above the diagonal J = II, strip
    # boundaries at 1, 5, 9
    assert all(j >= ii for ii, j in points)
    assert {(1, 1), (12, 12), (1, 12)} <= points
    assert (12, 1) not in points
    # trapezoid per strip: the first strip's II=1 column is the tallest
    col_heights = {ii: sum(1 for x, _ in points if x == ii) for ii in range(1, 13)}
    assert col_heights[1] > col_heights[4] > col_heights[12]


def test_fig02_data_space_of_a(benchmark, show):
    sections = benchmark.pedantic(figure2_sections, rounds=1, iterations=1)
    text = "\n".join(f"{k:24s} -> {v.pretty()}" for k, v in sections.items())
    show("Figure 2: data space of A in the Sec. 3.3 loop", text)
    read_ii = next(v for k, v in sections.items() if "II" in k)
    write_k = next(v for k, v in sections.items() if "read" not in k and "K" in k)
    # the paper's exact claim: A(II) reads I..I+IS-1, A(K) spans I..N
    assert fmt_expr(read_ii.dims[0].lo) == "I"
    assert "I + IS - 1" in fmt_expr(read_ii.dims[0].hi)
    assert fmt_expr(write_k.dims[0].lo) == "I"
    assert fmt_expr(write_k.dims[0].hi) == "N"


def test_fig05_lu_sections(benchmark, show):
    sections = benchmark.pedantic(figure5_sections, rounds=1, iterations=1)
    text = "\n".join(f"{k:26s} -> {v.pretty()}" for k, v in sections.items())
    show("Figure 5: sections of A over one KK block of strip-mined LU", text)
    panel = sections["stmt 20 writes A(I,KK)"]
    trail = sections["stmt 10 writes A(I,J)"]
    # columns: the panel covers K..K+KS-1 (clamped); the update K+1..N
    assert fmt_expr(panel.dims[1].lo) == "K"
    assert "K + KS - 1" in fmt_expr(panel.dims[1].hi)
    assert fmt_expr(trail.dims[1].hi) == "N"
    # rows agree: K+1..N both
    assert fmt_expr(panel.dims[0].lo) == fmt_expr(trail.dims[0].lo) == "K + 1"
