"""Figures 6, 8, 10: the compiler-derived block/optimized algorithms.

The headline reproduction: starting from the *point* listings, the
compiler must derive

- Fig. 6 — block LU without pivoting (IndexSetSplit + distribution +
  triangular interchange),
- Fig. 8 — block LU with partial pivoting (additionally the Sec. 5.2
  commutativity knowledge),
- Fig. 10 — optimized Givens QR (split + scalar expansion + fused
  IF-inspection + interchange), node-for-node equal to the paper
  transcription.
"""

import numpy as np
import pytest

from repro.algorithms import (
    givens_optimized_ir,
    givens_point_ir,
    lu_block_fig6_ir,
    lu_pivot_point_ir,
    lu_point_ir,
)
from repro.blockability import Verdict, classify
from repro.blockability.givens import optimize_givens
from repro.ir.pretty import to_fortran
from repro.ir.stmt import Loop
from repro.ir.visit import find_loops, loop_by_var
from repro.runtime.validate import assert_equivalent
from repro.symbolic.assume import Assumptions


def test_fig06_block_lu_derived(benchmark, show):
    def derive():
        return classify(lu_point_ir(), "K", "KS", ctx=Assumptions().assume_ge("N", 2))

    res = benchmark.pedantic(derive, rounds=1, iterations=1)
    assert res.verdict == Verdict.BLOCKABLE
    derived = res.procedure
    show(
        "Figure 6: block LU derived from the point algorithm",
        to_fortran(derived) + "\n\n--- paper transcription (clamps added) ---\n"
        + to_fortran(lu_block_fig6_ir()),
    )
    # Fig. 6 structure: a point panel (KK outer) and a trailing update
    # with KK innermost under J and I, triangular clamp KK <= I-1
    k = loop_by_var(derived.body, "K")
    top_vars = [s.var for s in k.body if isinstance(s, Loop)]
    assert top_vars == ["KK", "J"]
    update_j = next(s for s in k.body if isinstance(s, Loop) and s.var == "J")
    update_order = [l.var for l in find_loops(update_j)]
    assert update_order == ["J", "I", "KK"]
    # and it is exactly equivalent to the paper's published block algorithm
    for n, ks in ((12, 4), (13, 5)):
        assert_equivalent(lu_block_fig6_ir(), derived, {"N": n, "KS": ks})


@pytest.mark.slow
def test_fig08_block_lu_pivot_derived(benchmark, show):
    def derive():
        return classify(
            lu_pivot_point_ir(), "K", "KS", ctx=Assumptions().assume_ge("N", 2)
        )

    res = benchmark.pedantic(derive, rounds=1, iterations=1)
    assert res.verdict == Verdict.BLOCKABLE_WITH_COMMUTATIVITY
    assert res.report.used_commutativity
    derived = res.procedure
    show("Figure 8: block LU with partial pivoting (derived)", to_fortran(derived))
    # Fig. 8 structure: the point algorithm stays in the KK panel
    # (search + whole-row swaps + scale), the trailing update is extracted
    k = loop_by_var(derived.body, "K")
    top_loops = [s for s in k.body if isinstance(s, Loop)]
    assert top_loops[0].var == "KK"
    assert top_loops[-1].var == "J"
    assert [l.var for l in find_loops(top_loops[-1])] == ["J", "I", "KK"]
    # bitwise equivalence with the point algorithm (commuted row swaps and
    # column updates perform identical per-element arithmetic)
    assert_equivalent(lu_pivot_point_ir(), derived, {"N": 12, "KS": 4}, exact=False)
    assert_equivalent(lu_pivot_point_ir(), derived, {"N": 11, "KS": 3}, exact=False)


def test_fig10_givens_derived_node_for_node(benchmark, show):
    ctx = Assumptions().assume_ge("M", 2).assume_le("N", "M")

    derived = benchmark.pedantic(
        lambda: optimize_givens(givens_point_ir(), ctx), rounds=1, iterations=1
    )
    show("Figure 10: optimized Givens QR (derived)", to_fortran(derived))
    # node-for-node equality with the paper transcription
    assert derived.body == givens_optimized_ir().body
    assert derived.arrays == givens_optimized_ir().arrays
