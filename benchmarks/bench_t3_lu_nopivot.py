"""Table T3 (Sec. 5.1): LU without pivoting — Point, "1", "2", "2+".

"2" is the compiler-derived Fig. 6; "2+" adds unroll-and-jam and scalar
replacement.  Paper shape: point >= "1" >= "2" >> "2+", overall speedups
2.5–3.2, block 64 marginally behind block 32.
"""

import pytest

from repro.bench.experiments import derived_block_lu, lu_two_plus, table_t3_lu
from repro.runtime import compile_procedure


def test_t3_table(benchmark, show):
    table = benchmark.pedantic(table_t3_lu, rounds=1, iterations=1)
    show(table.title, table.render())
    for row in table.rows:
        # ordering: 2+ fastest; point slowest; "1" and "2" within a few
        # percent of each other (the paper's 1.35 vs 1.37 story)
        assert row["modeled_2p"] < row["modeled_2"], row
        assert row["modeled_2"] <= row["modeled_point"], row
        assert abs(row["modeled_1"] - row["modeled_2"]) / row["modeled_2"] < 0.2, row
        # speedup band: paper 2.5-3.2; accept 1.8-4 as same-shape
        assert 1.8 <= row["modeled_speedup"] <= 4.0, row
    # crossover: block 64 never beats block 32 (paper: 3.00 vs 2.53 etc.)
    for size in (300, 500):
        s32 = next(r for r in table.rows if r["size"] == size and r["block"] == 32)
        s64 = next(r for r in table.rows if r["size"] == size and r["block"] == 64)
        assert s32["modeled_speedup"] >= s64["modeled_speedup"] * 0.95


def test_t3_wallclock_point(benchmark):
    from repro.algorithms import lu_point_ir

    run = compile_procedure(lu_point_ir())
    benchmark(lambda: run({"N": 40}, seed=3))


def test_t3_wallclock_derived_block(benchmark):
    run = compile_procedure(derived_block_lu())
    benchmark(lambda: run({"N": 40, "KS": 8}, seed=3))


def test_t3_wallclock_two_plus(benchmark):
    run = compile_procedure(lu_two_plus())
    benchmark(lambda: run({"N": 40, "KS": 8}, seed=3))
