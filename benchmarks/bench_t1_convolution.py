"""Table T1 (Sec. 3.2): Aconv/Conv, original vs transformed.

The transformed kernels are derived by the compiler (complete trapezoid
splitting, triangular/rhomboidal unroll-and-jam, scalar replacement).
Paper speedups: 1.80–1.91; the effect is register traffic, which the cost
model's reference term carries, so the paper-size problems run unscaled.
"""

import pytest

from repro.bench.experiments import conv_transformed, table_t1_convolution


def test_t1_table(benchmark, show):
    table = benchmark.pedantic(table_t1_convolution, rounds=1, iterations=1)
    show(table.title, table.render())
    for row in table.rows:
        # the transformed kernel must win.  The paper measured 1.8-1.9x;
        # the ref-count cost model overstates register-blocking wins on
        # this flop-heavy kernel (it does not charge the multiply-adds
        # that remain), so the accepted same-shape band is wider upward.
        assert 1.3 <= row["modeled_speedup"] <= 3.5, row
        assert row["refs_xform"] < row["refs_orig"]
    # larger problems must not lose the effect
    by_kernel = {}
    for row in table.rows:
        by_kernel.setdefault(row["kernel"], []).append(row["modeled_speedup"])
    for kernel, sp in by_kernel.items():
        assert max(sp) / min(sp) < 1.5, f"{kernel}: speedup should be size-stable"


@pytest.mark.parametrize("kind", ["aconv", "conv"])
def test_t1_wallclock_kernels(benchmark, kind):
    """Wall-clock of the compiled transformed kernel (pytest-benchmark
    timing; relative numbers only — this is CPython)."""
    import numpy as np

    from repro.runtime import compile_procedure

    run = compile_procedure(conv_transformed(kind))
    sizes = {"N1": 120, "N2": 103, "N3": 120, "DT": 0.5}
    benchmark(lambda: run(sizes, seed=1))
