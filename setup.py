"""Legacy setup shim.

The execution environment is offline (no `wheel`, no build isolation), so
`pip install -e .` must go through the classic `setup.py develop` path.
All real metadata lives in pyproject.toml; keep this file minimal.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
