"""Regression tests for :func:`repro.transform.base.fresh_var`: the
numbered-suffix fallback is unbounded (it used to die at 99)."""

from repro.transform.base import fresh_var


def test_double_style_prefers_doubled_name():
    taken = {"K"}
    assert fresh_var("K", taken) == "KK"
    assert "KK" in taken


def test_plain_style_prefers_base():
    taken = {"N"}
    assert fresh_var("I", taken, style="plain") == "I"


def test_falls_back_to_numbered_suffix():
    taken = {"K", "KK"}
    assert fresh_var("K", taken) == "K1"
    assert fresh_var("K", taken) == "K2"


def test_multichar_base_doubles_last_char():
    assert fresh_var("KS", {"KS"}) == "KSS"


def test_namespace_never_exhausts():
    # regression: the fallback was capped at 99 numbered suffixes and
    # raised RuntimeError("namespace exhausted") on the 100th request
    taken = set()
    names = [fresh_var("I", taken) for _ in range(250)]
    assert len(names) == len(set(names)) == 250
    assert "I150" in taken


def test_respects_pre_populated_gaps():
    taken = {"I", "II", "I1", "I3"}
    assert fresh_var("I", taken) == "I2"
    assert fresh_var("I", taken) == "I4"
