"""The strip-mine-and-interchange blocking driver, end to end."""

import pytest

from repro.ir.build import assign, do, ref
from repro.ir.expr import Min, Var
from repro.ir.pretty import to_fortran
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import find_loops, loop_by_var
from repro.runtime.validate import assert_equivalent
from repro.symbolic.assume import Assumptions
from repro.transform.blocking import block_loop


class TestSec23Rectangular:
    def test_paper_result(self, vecadd_proc):
        out, report = block_loop(vecadd_proc, "J", "JS")
        assert report.blocked_innermost == 1
        assert report.residual_point_loops == 0
        assert not report.used_index_set_split
        # structure: DO J step JS / DO I / DO JJ
        loops = find_loops(out)
        assert [l.var for l in loops] == ["J", "I", "JJ"]
        for n, m, js in ((13, 9, 4), (12, 9, 4), (5, 3, 8)):
            assert_equivalent(vecadd_proc, out, {"N": n, "M": m, "JS": js})


class TestSec33ComplexDependence:
    def make(self):
        s1 = assign(ref("T", "I"), ref("A", "I"))
        s2 = do("K", "I", "N", assign(ref("A", "K"), ref("A", "K") + ref("T", "I")))
        return Procedure(
            "p", ("N",),
            (ArrayDecl("A", (Var("N"),)), ArrayDecl("T", (Var("N"),))),
            (do("I", 1, "N", s1, s2),),
        )

    def test_split_then_partial_blocking(self):
        p = self.make()
        out, report = block_loop(p, "I", "IS")
        assert report.used_index_set_split
        assert report.blocked_innermost >= 1  # the disjoint region
        assert report.residual_point_loops >= 1  # the true recurrence
        for n, s in ((23, 5), (20, 5), (7, 10), (1, 3)):
            assert_equivalent(p, out, {"N": n, "IS": s})


class TestLUWithoutPivoting:
    def test_figure6_derived(self):
        from repro.algorithms import lu_point_ir

        ctx = Assumptions().assume_ge("N", 2)
        out, report = block_loop(lu_point_ir(), "K", "KS", ctx=ctx)
        assert report.used_index_set_split
        assert report.blocked_innermost == 1
        text = to_fortran(out)
        # the Fig. 6 signature: trailing update with KK innermost and the
        # triangular clamp KK <= I-1
        assert "DO KK = K, MIN(I - 1, K + KS - 1" in text
        for n, ks in ((12, 4), (13, 4), (9, 3), (5, 8)):
            assert_equivalent(lu_point_ir(), out, {"N": n, "KS": ks})


class TestUnblockable:
    def test_sequential_scan_stays_point(self):
        # a genuine full-length recurrence: nothing to carve off
        p = Procedure(
            "scan", ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (do("I", 2, "N", assign(ref("A", "I"), ref("A", Var("I") - 1) + 1.0)),),
        )
        out, report = block_loop(p, "I", "IS")
        assert report.blocked_innermost == 0
        # and the program still runs correctly
        assert_equivalent(p, out, {"N": 9, "IS": 3})
