"""Strip mining and loop interchange (incl. triangular bound rewrites)."""

import pytest

from repro.errors import TransformError
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, IntDiv, Max, Min, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import find_loops, loop_by_var
from repro.runtime.validate import assert_equivalent
from repro.symbolic.assume import Assumptions
from repro.transform.interchange import interchange
from repro.transform.stripmine import strip_mine


def proc_of(*body, arrays=("A",), params=("N",), extra=()):
    decls = tuple(ArrayDecl(a, (Var("N"),) if a != "A2" else (Var("N"), Var("N"))) for a in arrays)
    return Procedure("t", tuple(params) + tuple(extra), decls, tuple(body))


class TestStripMine:
    def test_structure_and_semantics(self, vecadd_proc):
        j = loop_by_var(vecadd_proc.body, "J")
        out, info = strip_mine(vecadd_proc, j, "JS")
        assert info.block_var == "J" and info.strip_var == "JJ"
        outer = loop_by_var(out.body, "J")
        assert outer.step == Var("JS")
        innerj = loop_by_var(out.body, "JJ")
        assert innerj.lo == Var("J")
        assert isinstance(innerj.hi, Min)
        assert "JS" in out.params
        for n in (10, 12):
            assert_equivalent(vecadd_proc, out, {"N": n, "M": 7, "JS": 4})

    def test_constant_factor(self, vecadd_proc):
        j = loop_by_var(vecadd_proc.body, "J")
        out, info = strip_mine(vecadd_proc, j, 3)
        assert info.factor == Const(3)
        assert_equivalent(vecadd_proc, out, {"N": 10, "M": 5})

    def test_rejects_nonunit_step(self):
        p = proc_of(do("I", 1, "N", assign(ref("A", "I"), 0.0), step=2))
        with pytest.raises(TransformError):
            strip_mine(p, loop_by_var(p.body, "I"), 4)

    def test_rejects_bad_factor(self, vecadd_proc):
        j = loop_by_var(vecadd_proc.body, "J")
        with pytest.raises(TransformError):
            strip_mine(vecadd_proc, j, 0)

    def test_fresh_name_collision_avoided(self):
        p = proc_of(
            assign("JJ", 0),
            do("J", 1, "N", assign(ref("A", "J"), Var("JJ") * 1.0)),
        )
        out, info = strip_mine(p, loop_by_var(p.body, "J"), 2)
        assert info.strip_var != "JJ"


class TestRectangularInterchange:
    def test_swap_and_semantics(self, vecadd_proc):
        j = loop_by_var(vecadd_proc.body, "J")
        out = interchange(vecadd_proc, j)
        loops = find_loops(out)
        assert [l.var for l in loops] == ["I", "J"]
        assert_equivalent(vecadd_proc, out, {"N": 6, "M": 9})

    def test_imperfect_nest_rejected(self):
        p = proc_of(
            do("J", 1, "N", assign("X", 0), do("I", 1, "N", assign(ref("A", "I"), 0.0)))
        )
        with pytest.raises(TransformError):
            interchange(p, loop_by_var(p.body, "J"))

    def test_dependence_violation_refused(self):
        # A2(I,J) = A2(I-1,J+1): vector (1,-1) -> interchange illegal
        p = Procedure(
            "t",
            ("N",),
            (ArrayDecl("A2", (Var("N"), Var("N"))),),
            (
                do(
                    "I", 2, Var("N") - 1,
                    do("J", 2, Var("N") - 1,
                       assign(ref("A2", "I", "J"),
                              ref("A2", Var("I") - 1, Var("J") + 1) + 1.0)),
                ),
            ),
        )
        with pytest.raises(TransformError):
            interchange(p, loop_by_var(p.body, "I"))
        # and the safe diagonal direction is accepted
        p_ok = Procedure(
            "t",
            ("N",),
            (ArrayDecl("A2", (Var("N"), Var("N"))),),
            (
                do(
                    "I", 2, Var("N") - 1,
                    do("J", 2, Var("N") - 1,
                       assign(ref("A2", "I", "J"),
                              ref("A2", Var("I") - 1, Var("J") - 1) + 1.0)),
                ),
            ),
        )
        out = interchange(p_ok, loop_by_var(p_ok.body, "I"))
        assert_equivalent(p_ok, out, {"N": 8})


class TestTriangularInterchange:
    def tri_proc(self, lo=None, hi=None):
        inner = do("J", lo if lo is not None else 1, hi if hi is not None else "N",
                   assign(ref("A2", "II", "J"), ref("A2", "II", "J") + 1.0))
        return Procedure(
            "t", ("N", "M"),
            (ArrayDecl("A2", (Var("N"), Var("N"))),),
            (do("II", 1, "M", inner),),
        )

    def test_lower_triangular_formula(self):
        """The paper's Sec. 3.1 case: J from a*II+b with a=1."""
        p = self.tri_proc(lo=Var("II") + 2, hi="N")
        out = interchange(p, loop_by_var(p.body, "II"))
        j = find_loops(out)[0]
        assert j.var == "J"
        assert j.lo == Const(3)  # alpha*outer.lo + beta = 1+2
        ii = find_loops(out)[1]
        assert isinstance(ii.hi, Min)  # MIN((J-beta)/alpha, M)
        assert_equivalent(p, out, {"N": 9, "M": 6}, engine="codegen")

    def test_upper_triangular(self):
        p = self.tri_proc(lo=1, hi=Var("II") + 1)
        out = interchange(p, loop_by_var(p.body, "II"))
        j = find_loops(out)[0]
        assert j.var == "J"
        ii = find_loops(out)[1]
        assert isinstance(ii.lo, Max)
        assert_equivalent(p, out, {"N": 9, "M": 7})

    def test_alpha_two_uses_intdiv(self):
        p = self.tri_proc(lo=Var("II") * 2, hi="N")
        ctx = Assumptions().assume_ge("M", 1)
        out = interchange(p, loop_by_var(p.body, "II"), ctx)
        ii = find_loops(out)[1]
        assert any(isinstance(e, IntDiv) for e in [ii.hi] + (list(ii.hi.args) if isinstance(ii.hi, Min) else []))
        assert_equivalent(p, out, {"N": 14, "M": 7})

    def test_negative_alpha(self):
        p = self.tri_proc(lo=Var("N") - Var("II"), hi="N")
        out = interchange(p, loop_by_var(p.body, "II"))
        assert_equivalent(p, out, {"N": 9, "M": 5})

    def test_rhomboidal(self):
        p = self.tri_proc(lo=Var("II"), hi=Var("II") + 3)
        out = interchange(p, loop_by_var(p.body, "II"))
        assert_equivalent(p, out, {"N": 12, "M": 8})

    def test_trapezoid_refused_with_hint(self):
        p = self.tri_proc(lo=1, hi=Min((Var("II") + 3, Var("N"))))
        with pytest.raises(TransformError, match="index-set split"):
            interchange(p, loop_by_var(p.body, "II"))
