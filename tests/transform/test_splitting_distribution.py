"""Index-set splitting (all flavours) and loop distribution."""

import pytest

from repro.errors import TransformError
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Max, Min, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import find_loops, loop_by_var
from repro.runtime.validate import assert_equivalent
from repro.symbolic.assume import Assumptions
from repro.transform.distribution import ScalarFlowError, distribute
from repro.transform.index_set_split import (
    eliminate_single_trip,
    index_set_split_for_dependence,
    peel_first_iteration,
    split_index_set,
    split_trapezoid_max,
    split_trapezoid_min,
)


def vec_proc(*body, params=("N",)):
    return Procedure(
        "t", params,
        (ArrayDecl("A", (Var("N"),)), ArrayDecl("B", (Var("N"),))),
        tuple(body),
    )


class TestPlainSplit:
    def test_paper_example(self):
        """The Sec. 3 example: split at iteration 100."""
        l = do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") + ref("B", "I")))
        p = vec_proc(l)
        out, (first, second) = split_index_set(p, l, 100)
        assert isinstance(first.hi, Min)
        assert isinstance(second.lo, (Max, type(second.lo)))
        for n in (50, 100, 150):
            assert_equivalent(p, out, {"N": n})

    def test_symbolic_point(self):
        l = do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") * 2.0))
        p = vec_proc(l, params=("N", "P"))
        out, _ = split_index_set(p, l, Var("P"))
        for pt in (0, 3, 12):
            assert_equivalent(p, out, {"N": 9, "P": pt})

    def test_peel_and_eliminate(self):
        l = do("L", Var("S"), "N", assign(ref("A", "L"), Var("L") * 1.0))
        p = vec_proc(l, params=("N", "S"))
        out, (peel, rest) = split_index_set(p, l, Var("S"))
        ctx = Assumptions().assume_le("S", Var("N")).assume_ge("S", 1)
        peel_live = next(x for x in find_loops(out) if x == peel)
        out2 = eliminate_single_trip(out, peel_live, ctx)
        # the peeled iteration is now straight-line code
        assert len(find_loops(out2)) == 1
        assert_equivalent(p, out2, {"N": 8, "S": 3})

    def test_eliminate_requires_proof(self):
        l = do("L", 1, "N", assign(ref("A", "L"), 0.0))
        p = vec_proc(l)
        with pytest.raises(TransformError):
            eliminate_single_trip(p, l, Assumptions())

    def test_step_must_be_unit(self):
        l = do("I", 1, "N", assign(ref("A", "I"), 0.0), step=2)
        with pytest.raises(TransformError):
            split_index_set(vec_proc(l), l, 4)


class TestTrapezoids:
    def test_min_upper_bound(self):
        """Sec. 3.2: MIN(alpha*I+beta, N1) splits into triangle+rectangle."""
        inner = do("K", 1, Min((Var("I") + 2, Var("N1"))),
                   assign(ref("A", "K"), ref("A", "K") + 1.0))
        outer = do("I", 1, "N", inner)
        p = Procedure("t", ("N", "N1"), (ArrayDecl("A", (Var("N") + 2,)),), (outer,))
        out, (tri, rect) = split_trapezoid_min(p, outer)
        from repro.analysis.shape import LoopShape, classify_loop_shape

        assert classify_loop_shape(tri.body[0], "I").kind == LoopShape.TRIANGULAR_HI
        assert classify_loop_shape(rect.body[0], "I").kind == LoopShape.RECTANGULAR
        for (n, n1) in ((8, 6), (8, 20), (5, 5)):
            assert_equivalent(p, out, {"N": n, "N1": n1})

    def test_max_lower_bound(self):
        inner = do("K", Max((Var("I") - 3, Const(1))), "N1",
                   assign(ref("A", "K"), ref("A", "K") + 1.0))
        outer = do("I", 1, "N", inner)
        p = Procedure("t", ("N", "N1"), (ArrayDecl("A", (Var("N1"),)),), (outer,))
        out, (rect, coupled) = split_trapezoid_max(p, outer)
        for (n, n1) in ((9, 7), (4, 12)):
            assert_equivalent(p, out, {"N": n, "N1": n1})

    def test_wrong_shape_rejected(self):
        inner = do("K", 1, "N1", assign(ref("A", "K"), 0.0))
        outer = do("I", 1, "N", inner)
        p = Procedure("t", ("N", "N1"), (ArrayDecl("A", (Var("N1"),)),), (outer,))
        with pytest.raises(TransformError):
            split_trapezoid_min(p, outer)


class TestDistribution:
    def test_independent_split_in_order(self):
        l = do("I", 1, "N",
               assign(ref("A", "I"), 1.0),
               assign(ref("B", "I"), ref("A", "I") + 1.0))
        p = vec_proc(l)
        out, loops = distribute(p, l)
        assert len(loops) == 2
        assert_equivalent(p, out, {"N": 7})

    def test_recurrence_not_split(self):
        # B uses A of a *later* iteration's write? A(I+1) anti...
        l = do("I", 1, Var("N") - 1,
               assign(ref("A", "I"), ref("B", "I") + 1.0),
               assign(ref("B", "I"), ref("A", Var("I") + 1) + 1.0))
        p = vec_proc(l)
        with pytest.raises(TransformError) as err:
            distribute(p, l)
        assert getattr(err.value, "preventing", None)

    def test_scalar_flow_fuses_groups(self):
        # T written in stmt 1, used in stmt 2; A/B otherwise independent
        l = do("I", 1, "N",
               assign("T", ref("A", "I")),
               assign(ref("B", "I"), Var("T") * 2.0))
        p = vec_proc(l)
        with pytest.raises(ScalarFlowError) as err:
            distribute(p, l)
        assert err.value.names == {"T"}

    def test_partition_validation(self):
        s1 = assign(ref("A", "I"), 1.0)
        s2 = assign(ref("B", "I"), 2.0)
        l = do("I", 1, "N", s1, s2)
        p = vec_proc(l)
        out, loops = distribute(p, l, partition=[[s1], [s2]])
        assert len(loops) == 2
        with pytest.raises(TransformError):
            distribute(p, l, partition=[[s1]])  # does not cover the body


class TestIndexSetSplitProcedure:
    def test_sec33_split_point(self):
        """Fig. 3 applied to the Sec. 3.3 recurrence: K splits at the
        boundary between the common and disjoint sections."""
        from repro.analysis.graph import DependenceGraph

        s1 = assign(ref("T", "II"), ref("A", "II"))
        s2 = do("K", "II", "N", assign(ref("A", "K"), ref("A", "K") + ref("T", "II")))
        ii = do("II", "I", Min((Var("I") + Var("IS") - 1, Var("N"))), s1, s2)
        p = Procedure(
            "p", ("N", "IS"),
            (ArrayDecl("A", (Var("N"),)), ArrayDecl("T", (Var("N"),))),
            (do("I", 1, "N", ii, step="IS"),),
        )
        ctx = Assumptions().assume_ge("IS", 2).assume_ge("N", 2)
        g = DependenceGraph(p, ctx)
        deps = [d for d in g.preventing_dependences(ii) if d.array == "A"]
        assert deps
        out, reports = index_set_split_for_dependence(p, ii, deps[0], ctx)
        assert reports[0].loop_var == "K"
        # the split point is the strip's last index (possibly clamped by N)
        from repro.ir.pretty import fmt_expr

        assert "I + IS - 1" in fmt_expr(reports[0].point)
        for n, s in ((12, 4), (10, 3), (7, 10)):
            assert_equivalent(p, out, {"N": n, "IS": s})

    def test_identical_sections_refused(self):
        from repro.analysis.graph import DependenceGraph

        l = do("I", 2, "N", assign(ref("A", "I"), ref("A", Var("I") - 1) + 1.0))
        wrap = do("R", 1, 2, l)
        p = vec_proc(wrap)
        g = DependenceGraph(p)
        deps = g.preventing_dependences(wrap)
        if deps:  # the A-recurrence spans the identical section
            with pytest.raises(TransformError):
                index_set_split_for_dependence(p, wrap, deps[0])
