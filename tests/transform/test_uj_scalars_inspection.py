"""Unroll-and-jam, scalar replacement/expansion, IF-inspection."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import Call, Compare, Const, Min, Var
from repro.ir.stmt import ArrayDecl, Assign, If, Loop, Procedure
from repro.ir.visit import find_loops, loop_by_var, walk_stmts
from repro.runtime.validate import assert_equivalent
from repro.symbolic.assume import Assumptions
from repro.transform.if_inspection import guarded_distribute_with_inspection, if_inspect
from repro.transform.scalars import scalar_expand, scalar_replace
from repro.transform.unroll_jam import triangular_unroll_jam, unroll_and_jam


def mat_proc(*body, params=("N", "M")):
    return Procedure(
        "t", params,
        (ArrayDecl("A", (Var("N"), Var("N"))), ArrayDecl("B", (Var("N"),))),
        tuple(body),
    )


class TestUnrollAndJam:
    def nest(self):
        return do(
            "J", 1, "N",
            do("I", 1, "N",
               assign(ref("A", "I", "J"), ref("A", "I", "J") + ref("B", "I"))),
        )

    def test_pre_loop_plus_jammed_main(self):
        p = mat_proc(self.nest())
        j = loop_by_var(p.body, "J")
        out = unroll_and_jam(p, j, 3)
        js = [l for l in find_loops(out) if l.var == "J"]
        assert len(js) == 2  # pre-loop + main
        assert js[1].step == Const(3)
        # the inner I loop is fused: one I loop with 3 statements
        main_inner = [l for l in find_loops(js[1]) if l.var == "I"]
        assert len(main_inner) == 1
        assert len(main_inner[0].body) == 3
        for n in (7, 9, 3, 2):
            assert_equivalent(p, out, {"N": n, "M": 4})

    def test_factor_validation(self):
        p = mat_proc(self.nest())
        with pytest.raises(TransformError):
            unroll_and_jam(p, loop_by_var(p.body, "J"), 1)

    def test_dependence_violation_refused(self):
        # A(I,J) = A(I+1,J-1): jam by 2 would reverse the dependence
        nest = do(
            "J", 2, Var("N") - 1,
            do("I", 2, Var("N") - 1,
               assign(ref("A", "I", "J"), ref("A", Var("I") + 1, Var("J") - 1) + 1.0)),
        )
        p = mat_proc(nest)
        with pytest.raises(TransformError):
            unroll_and_jam(p, loop_by_var(p.body, "J"), 2)

    def test_flat_body_unrolls(self):
        l = do("J", 1, "N", assign(ref("B", "J"), Var("J") * 1.0))
        p = mat_proc(l)
        out = unroll_and_jam(p, loop_by_var(p.body, "J"), 4)
        assert_equivalent(p, out, {"N": 10, "M": 2})


class TestTriangularUJ:
    def test_lower_triangular(self):
        nest = do(
            "I", 1, "N",
            do("J", "I", "N", assign(ref("A", "J", "I"), ref("A", "J", "I") + 1.0)),
        )
        p = mat_proc(nest)
        out = triangular_unroll_jam(p, loop_by_var(p.body, "I"), 2)
        for n in (8, 9, 5):
            assert_equivalent(p, out, {"N": n, "M": 2})

    def test_upper_triangular(self):
        nest = do(
            "I", 1, "N",
            do("J", 1, "I", assign(ref("A", "J", "I"), ref("A", "J", "I") + 1.0)),
        )
        p = mat_proc(nest)
        out = triangular_unroll_jam(p, loop_by_var(p.body, "I"), 3)
        for n in (9, 7):
            assert_equivalent(p, out, {"N": n, "M": 2})

    def test_rhomboidal_band(self):
        nest = do(
            "I", 1, "N",
            do("J", "I", Var("I") + 4,
               assign(ref("B", "J"), ref("B", "J") + 1.0)),
        )
        p = Procedure("t", ("N",), (ArrayDecl("B", (Var("N") + 4,)),), (nest,))
        ctx = Assumptions()
        out = triangular_unroll_jam(p, loop_by_var(p.body, "I"), 3, ctx)
        for n in (9, 10, 4):
            assert_equivalent(p, out, {"N": n})

    def test_narrow_band_refused(self):
        nest = do(
            "I", 1, "N",
            do("J", "I", Var("I") + 1, assign(ref("B", "J"), ref("B", "J") + 1.0)),
        )
        p = Procedure("t", ("N",), (ArrayDecl("B", (Var("N") + 1,)),), (nest,))
        with pytest.raises(TransformError, match="band width"):
            triangular_unroll_jam(p, loop_by_var(p.body, "I"), 4)


class TestScalarReplacement:
    def test_invariant_hoisted_with_store_back(self):
        # B(J) invariant: loaded once; A(J,J) read+write invariant: load+store
        nest = do(
            "J", 1, "N",
            do("I", 1, "N",
               assign(ref("A", "J", "J"), ref("A", "J", "J") + ref("B", "J") + ref("A", "I", "J") * 0.0)),
        )
        p = mat_proc(nest)
        # A(J,J) aliases A(I,J) at I == J: replacement must be refused
        out, reports = scalar_replace(p)
        inner = loop_by_var(out.body, "I")
        body_text = repr(inner)
        assert "A" in body_text  # A(J,J) not replaced (aliases A(I,J))

    def test_safe_invariant_replaced(self):
        nest = do(
            "J", 1, "N",
            do("I", 1, "N",
               assign(ref("A", "I", "J"), ref("A", "I", "J") + ref("B", "J"))),
        )
        p = mat_proc(nest)
        out, reports = scalar_replace(p)
        assert reports and ("B", (Var("J"),)) in reports[0].replaced
        # the hoisted load sits between the J and I loops
        j = loop_by_var(out.body, "J")
        assert isinstance(j.body[0], Assign) and j.body[0].target == Var("B0")
        assert_equivalent(p, out, {"N": 6, "M": 2})

    def test_loop_independent_collapse(self):
        # the unroll-and-jam accumulator pattern: two A(I,J) updates per
        # iteration collapse into one load + one store
        nest = do(
            "J", 1, "N",
            do("I", 1, "N",
               assign(ref("A", "I", "J"), ref("A", "I", "J") + 1.0),
               assign(ref("A", "I", "J"), ref("A", "I", "J") * 2.0)),
        )
        p = mat_proc(nest)
        out, reports = scalar_replace(p)
        assert reports
        inner = loop_by_var(out.body, "I")
        loads = sum(
            1
            for s in walk_stmts(inner.body)
            if isinstance(s, Assign) and s.target == Var("A0")
        )
        assert loads >= 1
        assert_equivalent(p, out, {"N": 5, "M": 2})

    def test_guarded_access_not_hoisted(self):
        nest = do(
            "J", 1, "N",
            do("I", 1, "N",
               if_(ref("A", "I", "J").gt(0.0), [assign(ref("B", "J"), 1.0)])),
        )
        p = mat_proc(nest)
        out, reports = scalar_replace(p)
        assert not any(("B", (Var("J"),)) in r.replaced for r in reports)


class TestScalarExpansion:
    def test_expansion_semantics(self):
        l = do(
            "J", 1, "N",
            assign("C", ref("B", "J") * 2.0),
            assign(ref("A", "J", "J"), Var("C")),
        )
        p = mat_proc(l)
        out = scalar_expand(p, l, ("C",))
        assert "C" in out.array_names
        assert_equivalent(p, out, {"N": 5, "M": 2})

    def test_extent_must_be_parametric(self):
        outer = do("K", 1, "N", do("J", 1, Var("K"), assign("C", 1.0), assign(ref("B", "J"), Var("C"))))
        p = mat_proc(outer)
        j = loop_by_var(p.body, "J")
        with pytest.raises(TransformError):
            scalar_expand(p, j, ("C",))
        # explicit extent fixes it
        out = scalar_expand(p, j, ("C",), extent=Var("N"))
        assert_equivalent(p, out, {"N": 5, "M": 2})


class TestIfInspection:
    def guarded(self):
        return do(
            "K", 1, "N",
            if_(
                Compare("ne", ref("B", "K"), Const(0.0)),
                [do("I", 1, "N", assign(ref("A", "I", "K"), ref("A", "I", "K") + ref("B", "K")))],
            ),
        )

    def test_inspector_executor_semantics(self):
        p = mat_proc(self.guarded())
        k = loop_by_var(p.body, "K")
        out, executor = if_inspect(p, k)
        assert {a.name for a in out.arrays} >= {"KLB", "KUB"}
        b = np.zeros(9)
        b[[1, 2, 3, 7]] = 1.0
        assert_equivalent(p, out, {"N": 9, "M": 2}, arrays={"B": b})
        # all-true and all-false edge cases
        assert_equivalent(p, out, {"N": 5, "M": 2}, arrays={"B": np.ones(5)})
        assert_equivalent(p, out, {"N": 5, "M": 2}, arrays={"B": np.zeros(5)})

    def test_guard_instability_refused(self):
        # the body writes the guard element itself
        l = do(
            "K", 1, "N",
            if_(
                Compare("ne", ref("B", "K"), Const(0.0)),
                [assign(ref("B", "K"), Const(0.0))],
            ),
        )
        p = mat_proc(l)
        with pytest.raises(TransformError):
            if_inspect(p, loop_by_var(p.body, "K"))

    def test_shape_requirements(self):
        l = do("K", 1, "N", assign(ref("B", "K"), 0.0))
        p = mat_proc(l)
        with pytest.raises(TransformError):
            if_inspect(p, loop_by_var(p.body, "K"))

    def test_guarded_distribution_with_inspection(self):
        """The Givens pattern: part 1 zeroes the guard operand, part 2
        replays recorded ranges."""
        l = do(
            "J", 1, "N",
            if_(
                Compare("ne", ref("B", "J"), Const(0.0)),
                [
                    assign(ref("B", "J"), Const(0.0)),
                    do("I", 1, "M", assign(ref("A", "I", "J"), ref("A", "I", "J") + 1.0)),
                ],
            ),
        )
        p = Procedure(
            "t", ("N", "M"),
            (ArrayDecl("A", (Var("M"), Var("N"))), ArrayDecl("B", (Var("N"),))),
            (l,),
        )
        out, executor = guarded_distribute_with_inspection(p, l, split_at=1)
        b = np.zeros(8)
        b[[0, 3, 4, 7]] = 2.0
        assert_equivalent(p, out, {"N": 8, "M": 3}, arrays={"B": b})
