"""The blockability linter must reproduce the Sec. 5 study statically —
no transformation runs, yet the verdicts match the transforming driver."""

import pytest

from repro.algorithms import (
    givens_point_ir,
    householder_point_ir,
    lu_pivot_point_ir,
    lu_point_ir,
)
from repro.check import lint_blockability, lint_loop
from repro.check.linter import (
    BLOCKABLE,
    BLOCKABLE_WITH_COMMUTATIVITY,
    NOT_BLOCKABLE,
)
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.symbolic.assume import Assumptions

N2 = Assumptions().assume_ge("N", 2)
MN = Assumptions().assume_ge("M", 2).assume_le("N", "M")


def test_lu_nopivot_blockable():
    r = lint_loop(lu_point_ir(), "K", ctx=N2)
    assert r.verdict == BLOCKABLE
    assert r.escapes  # names the loops that escape the recurrence


def test_lu_pivot_blockable_with_commutativity():
    r = lint_loop(lu_pivot_point_ir(), "K", ctx=N2)
    assert r.verdict == BLOCKABLE_WITH_COMMUTATIVITY


def test_lu_pivot_not_blockable_without_commutativity():
    r = lint_loop(lu_pivot_point_ir(), "K", ctx=N2,
                  allow_commutativity=False)
    assert r.verdict == NOT_BLOCKABLE
    assert r.preventing  # names a transformation-preventing dependence


def test_householder_not_blockable():
    ctx = MN.assume_ge("N", 2)
    r = lint_loop(householder_point_ir(), "K", ctx=ctx)
    assert r.verdict == NOT_BLOCKABLE


def test_givens_not_blockable():
    # Sec. 5.4: the rotation guard buries DO K inside an IF — the strip
    # loop cannot sink through the imperfect nest
    r = lint_loop(givens_point_ir(), "L", ctx=MN)
    assert r.verdict == NOT_BLOCKABLE


def test_innermost_loop_is_not_blockable():
    p = Procedure(
        "flat", ("N",), (ArrayDecl("B", (Var("N"),)),),
        (do("I", 1, "N", assign(ref("B", "I"), Const(0))),),
    )
    r = lint_loop(p, "I", ctx=N2)
    assert r.verdict == NOT_BLOCKABLE
    assert "innermost" in r.reason


def test_lint_blockability_covers_every_outer_loop():
    results = lint_blockability(lu_point_ir(), ctx=N2)
    assert [r.loop_var for r in results] == ["K"]
    assert results[0].verdict == BLOCKABLE


def test_diagnostic_mirrors_verdict():
    d = lint_loop(lu_point_ir(), "K", ctx=N2).diagnostic()
    assert d.rule == "lint/blockable"
    assert d.severity.value == "info"
    d = lint_loop(givens_point_ir(), "L", ctx=MN).diagnostic()
    assert d.rule == "lint/not-blockable"
    assert d.severity.value == "warning"


# --- lint/par-* : loop-parallelism classifications ------------------------

def test_lint_parallelism_one_diagnostic_per_loop():
    from repro.check.linter import lint_parallelism
    from repro.ir.visit import find_loops
    from repro.pipeline.workloads import get_workload

    w = get_workload("matmul")
    proc = w.build()
    diags = lint_parallelism(proc, w.context(None))
    assert len(diags) == len(find_loops(proc))
    assert {d.rule for d in diags} <= {
        "lint/par-parallel", "lint/par-reduction", "lint/par-serial"
    }
    assert all(d.severity.value == "info" for d in diags)


def test_lint_parallelism_rules_match_detector_verdicts():
    from repro.check.linter import lint_parallelism
    from repro.par.detect import classify_procedure
    from repro.pipeline.workloads import get_workload

    for name in ("matmul", "lu_nopivot", "conv"):
        w = get_workload(name)
        proc = w.build()
        ctx = w.context(None)
        rules = [d.rule for d in lint_parallelism(proc, ctx)]
        verdicts = [f"lint/par-{v.verdict}"
                    for v in classify_procedure(proc, ctx)]
        assert rules == verdicts, name


def test_lint_par_serial_names_the_witness_edge():
    from repro.check.linter import lint_parallelism
    from repro.pipeline.workloads import get_workload

    w = get_workload("lu_nopivot")
    diags = lint_parallelism(w.build(), w.context(None))
    serial = [d for d in diags if d.rule == "lint/par-serial"]
    assert serial
    assert any("witness" in d.message and "direction" in d.message
               for d in serial)


def test_par_rules_in_catalogue():
    from repro.check.diagnostics import RULES

    for rule in ("legal/par-carried-dep", "legal/par-reduction-shape",
                 "lint/par-parallel", "lint/par-reduction",
                 "lint/par-serial"):
        assert rule in RULES
        assert RULES[rule].summary
