"""``--check`` mode: the PassManager brackets every pass with legality
pre/postchecks and IR re-verification, failing fast with structured
diagnostics, and the CLIs expose it."""

import pytest

from repro.algorithms import lu_point_ir
from repro.errors import CheckError
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.pipeline import PassManager, PassSpec, derive
from repro.pipeline.cache import AnalysisCache
from repro.pipeline.cli import main as pipeline_main
from repro.symbolic.assume import Assumptions

N2 = Assumptions().assume_ge("N", 2)


def test_default_derivations_are_check_clean():
    for name in ("lu_nopivot", "conv", "matmul"):
        result = derive(name, cache=AnalysisCache(), check=True)
        errs = [d for d in result.check_diagnostics
                if d.severity.value == "error"]
        assert errs == [], name


def test_malformed_input_ir_fails_fast():
    bad = Procedure(
        "bad", ("N",), (ArrayDecl("B", (Var("N"),)),),
        (do("I", 1, "N", do("I", 1, "N",
                            assign(ref("B", "I"), Const(0)))),),
    )
    mgr = PassManager([PassSpec("stripmine", {"loop": "I", "factor": 4})],
                      ctx=N2, check=True)
    with pytest.raises(CheckError) as exc:
        mgr.run(bad)
    assert any(d.rule == "ir/shadowed-induction" for d in exc.value.diagnostics)
    assert exc.value.result is not None  # partial result for offline triage


def test_illegal_block_config_fails_fast_with_rule():
    mgr = PassManager(
        [PassSpec("block",
                  {"loop": "K", "factor": "KS", "max_splits": 0})],
        ctx=N2, check=True,
    )
    with pytest.raises(CheckError) as exc:
        mgr.run(lu_point_ir())
    assert any(d.rule == "legal/block-carried-recurrence"
               for d in exc.value.diagnostics)
    span = exc.value.result.spans[0]
    assert span.status == "check-failed"
    assert "check" in span.detail


def test_check_off_does_not_populate_diagnostics():
    result = derive("lu_nopivot", cache=AnalysisCache(), check=False)
    assert result.check_diagnostics == []


def test_pipeline_cli_check_flag_ok(capsys):
    assert pipeline_main(["-a", "lu_nopivot", "--check"]) == 0
    out = capsys.readouterr().out
    assert "lu_nopivot" in out


def test_bench_cli_check_flag_ok(tmp_path, capsys):
    from repro.pipeline.bench import main as bench_main

    path = tmp_path / "bench.json"
    assert bench_main([str(path), "--check"]) == 0
    assert path.exists()
