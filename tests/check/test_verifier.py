"""Mutation tests for the IR verifier: every ``ir/*`` rule must fire on
its seeded defect and stay silent on the well-formed original."""

import pytest

from repro.check import verify_ir
from repro.check.diagnostics import Severity, errors_in
from repro.ir.build import assign, block_do, do, if_, in_do, ref
from repro.ir.expr import Call, Compare, Const, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.pipeline.workloads import available_workloads
from repro.symbolic.assume import Assumptions


def proc_2d(*body):
    return Procedure(
        "p",
        ("N",),
        (ArrayDecl("A", (Var("N"), Var("N"))), ArrayDecl("B", (Var("N"),))),
        tuple(body),
    )


def rules_of(diags):
    return {d.rule for d in diags}


def test_well_formed_is_clean():
    p = proc_2d(
        do("I", 1, "N", do("J", 1, "N",
                           assign(ref("A", "I", "J"), ref("B", "I") + Const(1))))
    )
    assert verify_ir(p) == []


def test_all_workload_builds_are_clean():
    for w in available_workloads():
        assert verify_ir(w.build(), w.context(None)) == [], w.name


def test_shadowed_induction():
    p = proc_2d(do("I", 1, "N", do("I", 1, "N",
                                   assign(ref("B", "I"), Const(0)))))
    diags = verify_ir(p)
    assert "ir/shadowed-induction" in rules_of(diags)


def test_undeclared_array():
    p = proc_2d(do("I", 1, "N", assign(ref("Z", "I"), Const(0))))
    assert "ir/undeclared-array" in rules_of(verify_ir(p))


def test_rank_mismatch():
    p = proc_2d(do("I", 1, "N", assign(ref("B", "I", "I"), Const(0))))
    assert "ir/rank-mismatch" in rules_of(verify_ir(p))


def test_zero_step():
    p = proc_2d(do("I", 1, "N", assign(ref("B", "I"), Const(0)), step=0))
    assert "ir/zero-step" in rules_of(verify_ir(p))


def test_provably_zero_step_via_context():
    p = proc_2d(do("I", 1, "N", assign(ref("B", "I"), Const(0)),
                   step=Var("S")))
    ctx = Assumptions().assume_ge("S", 0).assume_le("S", 0)
    assert "ir/zero-step" in rules_of(verify_ir(p, ctx))
    # without the assumption the step is just unknown — no diagnostic
    assert "ir/zero-step" not in rules_of(verify_ir(p))


def test_self_referential_bound():
    p = proc_2d(do("I", 1, Var("I"), assign(ref("B", "I"), Const(0))))
    assert "ir/self-referential-bound" in rules_of(verify_ir(p))


def test_undefined_var():
    p = proc_2d(do("I", 1, "N", assign(ref("B", "I"), Var("Q"))))
    assert "ir/undefined-var" in rules_of(verify_ir(p))


def test_array_used_as_scalar():
    p = proc_2d(do("I", 1, "N", assign(ref("B", "I"), Var("A"))))
    assert "ir/array-used-as-scalar" in rules_of(verify_ir(p))


def test_assign_to_induction():
    p = proc_2d(do("I", 1, "N", assign(Var("I"), Const(3))))
    assert "ir/assign-to-induction" in rules_of(verify_ir(p))


def test_in_do_without_block():
    p = proc_2d(
        do("J", 1, "N",
           in_do("K", "KK", assign(ref("B", "KK"), Const(0))))
    )
    assert "ir/in-do-without-block" in rules_of(verify_ir(p))


def test_in_do_inside_matching_block_is_clean():
    p = proc_2d(
        block_do("K", 1, "N",
                 in_do("K", "KK", assign(ref("B", "KK"), Const(0))))
    )
    assert verify_ir(p) == []


def test_last_outside_block():
    p = proc_2d(
        do("J", 1, "N",
           assign(ref("B", "J"), Call("LAST", (Var("J"),))))
    )
    assert "ir/last-outside-block" in rules_of(verify_ir(p))


def test_last_inside_block_is_clean():
    p = proc_2d(
        block_do("K", 1, "N",
                 do("J", Var("K"), Call("LAST", (Var("K"),)),
                    assign(ref("B", "J"), Const(0))))
    )
    assert verify_ir(p) == []


def test_last_arity():
    p = proc_2d(
        block_do("K", 1, "N",
                 assign(ref("B", "K"), Call("LAST", (Var("K"), Var("K")))))
    )
    assert "ir/last-arity" in rules_of(verify_ir(p))


def test_all_ir_diagnostics_are_errors():
    p = proc_2d(do("I", 1, "N", do("I", 1, Var("I"),
                                   assign(ref("Z", "I"), Var("Q")),
                                   step=0)))
    diags = verify_ir(p)
    assert diags and errors_in(diags) == diags
    assert all(d.severity == Severity.ERROR for d in diags)
    # diagnostics carry a clickable-ish path and a pretty line
    for d in diags:
        assert d.path.startswith("p/DO I")
        assert d.rule in d.pretty() and d.path in d.pretty()


def test_conditions_inside_if_are_checked():
    p = proc_2d(
        do("I", 1, "N",
           if_(Compare("ne", ref("Z", "I"), Const(0)),
               assign(ref("B", "I"), Const(0))))
    )
    assert "ir/undeclared-array" in rules_of(verify_ir(p))
