"""The ``repro.check/1`` report: build → validate round trip, and the
validator must catch tampered documents."""

import json

from repro.artifacts import is_envelope, payload_of, validate_document
from repro.artifacts.validate import RULE_STALE_VERSION
from repro.check import SCHEMA, build_report, validate_report, write_report
from repro.check.diagnostics import diag
from repro.check.linter import LintResult


def sample_report():
    diags = [
        diag("ir/zero-step", "p/DO I", "DO I has step 0"),
        diag("lint/blockable", "p/DO K", "escapes"),
    ]
    verdicts = [LintResult("p", "K", "blockable", "escapes")]
    return build_report(diags, verdicts=verdicts,
                        meta={"tool": "test", "n": 3})


def test_built_report_is_valid():
    doc = sample_report()
    assert doc["schema"] == SCHEMA
    assert validate_report(doc) == []
    assert doc["summary"] == {"error": 1, "warning": 0, "info": 1}
    assert doc["meta"]["n"] == "3"  # meta values are coerced to strings
    assert doc["verdicts"][0]["loop"] == "K"


def test_report_survives_json_round_trip(tmp_path):
    path = tmp_path / "report.json"
    write_report(str(path), sample_report())
    doc = json.loads(path.read_text())
    assert is_envelope(doc)
    assert validate_document(doc) == []
    assert validate_report(payload_of(doc)) == []


def test_wrong_schema_rejected():
    # schema identity moved to the envelope layer: a stale version is a
    # structured artifact/stale-version problem, not a payload error
    doc = sample_report()
    doc["schema"] = "repro.check/0"
    problems = validate_document(doc)
    assert [p.rule for p in problems] == [RULE_STALE_VERSION]


def test_tampered_summary_rejected():
    doc = sample_report()
    doc["summary"]["error"] = 7
    assert any("summary" in p for p in validate_report(doc))


def test_uncatalogued_rule_rejected():
    doc = sample_report()
    doc["diagnostics"][0]["rule"] = "ir/made-up"
    assert any("uncatalogued" in p for p in validate_report(doc))


def test_bad_severity_rejected():
    doc = sample_report()
    doc["diagnostics"][0]["severity"] = "fatal"
    assert any("severity" in p for p in validate_report(doc))


def test_bad_verdict_rejected():
    doc = sample_report()
    doc["verdicts"][0]["verdict"] = "maybe"
    assert any("verdict" in p for p in validate_report(doc))


def test_missing_fields_rejected():
    assert validate_report({"schema": SCHEMA}) != []
    assert validate_report([]) != []
