"""End-to-end tests of ``python -m repro.check``."""

import json

from repro.artifacts import payload_of
from repro.check.cli import main
from repro.check.report import validate_report


def test_rules_listing(capsys):
    assert main(["--rules"]) == 0
    out = capsys.readouterr().out
    assert "ir/zero-step" in out
    assert "legal/block-carried-recurrence" in out
    assert "lint/blockable" in out
    assert "legal/par-carried-dep" in out
    assert "legal/par-reduction-shape" in out
    assert "lint/par-parallel" in out
    assert "lint/par-reduction" in out
    assert "lint/par-serial" in out


def test_no_workload_is_usage_error(capsys):
    assert main([]) == 2


def test_unknown_workload_is_usage_error(capsys):
    assert main(["nonesuch"]) == 2


def test_lu_nopivot_clean_with_report(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert main(["lu_nopivot", "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "blockable" in out
    doc = payload_of(json.loads(path.read_text()))
    assert validate_report(doc) == []
    assert doc["summary"]["error"] == 0
    assert any(v["verdict"] == "blockable" for v in doc["verdicts"])


def test_two_workloads_one_invocation(capsys):
    assert main(["conv", "matmul"]) == 0
    out = capsys.readouterr().out
    assert "conv" in out and "matmul" in out


def test_report_carries_par_classifications(tmp_path):
    path = tmp_path / "report.json"
    assert main(["matmul", "--json", str(path)]) == 0
    doc = payload_of(json.loads(path.read_text()))
    rules = {d["rule"] for d in doc["diagnostics"]}
    assert "lint/par-parallel" in rules
    assert "lint/par-reduction" in rules
