"""Mutation tests for the transformation-legality predicates: each
seeded illegal transform must be flagged with its ``legal/*`` rule,
and the paper's legal derivation steps must stay silent."""

from repro.algorithms import lu_point_ir
from repro.check import postcheck, precheck
from repro.check.diagnostics import Severity
from repro.check.legality import precheck_for_pipeline
from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import Compare, Const, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.symbolic.assume import Assumptions


def proc_of(*body, arrays=None, params=("N",)):
    arrays = arrays or (ArrayDecl("A", (Var("N"), Var("N"))),
                        ArrayDecl("B", (Var("N"),)))
    return Procedure("p", params, tuple(arrays), tuple(body))


def rules_of(diags):
    return {d.rule for d in diags}


N2 = Assumptions().assume_ge("N", 2)


# --- interchange: the (<, >) direction-vector rule -----------------------

def skewed_nest():
    """A(I,J) = A(I-1,J+1): the dependence is (<, >) — interchanging
    I and J reverses it."""
    return proc_of(
        do("I", 2, "N",
           do("J", 1, Var("N") - Const(1),
              assign(ref("A", "I", "J"),
                     ref("A", Var("I") - Const(1), Var("J") + Const(1))
                     + Const(1))))
    )


def clean_nest():
    """A(I,J) = A(I-1,J-1): direction (<, <) — interchange is legal."""
    return proc_of(
        do("I", 2, "N",
           do("J", 2, "N",
              assign(ref("A", "I", "J"),
                     ref("A", Var("I") - Const(1), Var("J") - Const(1))
                     + Const(1))))
    )


def test_interchange_across_lt_gt_dependence_flagged():
    diags = precheck("interchange", skewed_nest(), N2, {"loop": "I"})
    assert "legal/interchange-direction" in rules_of(diags)
    assert all(d.severity == Severity.ERROR for d in diags)


def test_legal_interchange_is_silent():
    assert precheck("interchange", clean_nest(), N2, {"loop": "I"}) == []


def test_interchange_bounds_written_in_nest():
    p = proc_of(
        do("I", 1, "N",
           do("J", 1, Var("M"),
              assign(Var("M"), Var("J") + Const(1)),
              assign(ref("A", "I", "J"), Const(0)))),
    )
    diags = precheck("interchange", p, N2, {"loop": "I"})
    assert "legal/interchange-bounds" in rules_of(diags)


# --- jam: same rule, and the pipeline demotion ---------------------------

def test_jam_carried_race_flagged():
    diags = precheck("jam", skewed_nest(), N2, {"loop": "I"})
    assert "legal/jam-carried-race" in rules_of(diags)
    assert all(d.severity == Severity.ERROR for d in diags)


def test_jam_demoted_to_warning_for_pipeline():
    diags = precheck_for_pipeline("jam", skewed_nest(), N2, {"loop": "I"})
    assert "legal/jam-carried-race" in rules_of(diags)
    assert all(d.severity == Severity.WARNING for d in diags)


# --- stripmine / block ---------------------------------------------------

def test_stripmine_nonunit_step_flagged():
    p = proc_of(do("I", 1, "N", assign(ref("B", "I"), Const(0)), step=2))
    assert "legal/stripmine-step" in rules_of(
        precheck("stripmine", p, N2, {"loop": "I"}))


def test_stripmine_bad_factor_flagged():
    p = proc_of(do("I", 1, "N", assign(ref("B", "I"), Const(0))))
    assert "legal/stripmine-factor" in rules_of(
        precheck("stripmine", p, N2, {"loop": "I", "factor": 0}))


def test_block_lu_with_split_budget_is_legal():
    diags = precheck("block", lu_point_ir(), N2,
                     {"loop": "K", "factor": "KS"})
    assert diags == []


def test_block_over_carried_recurrence_without_split_flagged():
    diags = precheck("block", lu_point_ir(), N2,
                     {"loop": "K", "factor": "KS", "max_splits": 0})
    assert "legal/block-carried-recurrence" in rules_of(diags)
    assert all(d.severity == Severity.ERROR for d in diags)


# --- distribute: the Allen–Kennedy postcondition -------------------------

def recurrence_pair():
    s1 = assign(ref("A", "I"), ref("B", Var("I") - Const(1)) + Const(1))
    s2 = assign(ref("B", "I"), ref("A", Var("I") - Const(1)) + Const(1))
    arrays = (ArrayDecl("A", (Var("N"),)), ArrayDecl("B", (Var("N"),)))
    before = proc_of(do("I", 2, "N", s1, s2), arrays=arrays)
    broken = proc_of(do("I", 2, "N", s1), do("I", 2, "N", s2), arrays=arrays)
    return before, broken


def test_distribution_through_cycle_flagged():
    before, broken = recurrence_pair()
    diags = postcheck("distribute", before, broken, N2, {"loop": "I"})
    assert "legal/distribution-cycle" in rules_of(diags)


def test_distribution_of_independent_statements_is_silent():
    s1 = assign(ref("A", "I"), Const(1))
    s2 = assign(ref("B", "I"), Const(2))
    arrays = (ArrayDecl("A", (Var("N"),)), ArrayDecl("B", (Var("N"),)))
    before = proc_of(do("I", 1, "N", s1, s2), arrays=arrays)
    after = proc_of(do("I", 1, "N", s1), do("I", 1, "N", s2), arrays=arrays)
    assert postcheck("distribute", before, after, N2, {"loop": "I"}) == []


# --- split: pieces must partition the range ------------------------------

def one_loop(lo, hi):
    return do("I", lo, hi, assign(ref("B", "I"), Const(0)))


def test_split_with_gap_flagged():
    before = proc_of(one_loop(1, 10))
    after = proc_of(one_loop(1, 5), one_loop(7, 10))  # 6 is lost
    diags = postcheck("split", before, after, Assumptions(), {"loop": "I"})
    assert "legal/split-partition" in rules_of(diags)


def test_split_with_overlap_flagged():
    before = proc_of(one_loop(1, 10))
    after = proc_of(one_loop(1, 6), one_loop(6, 10))  # 6 runs twice
    diags = postcheck("split", before, after, Assumptions(), {"loop": "I"})
    assert "legal/split-partition" in rules_of(diags)


def test_exact_split_is_silent():
    before = proc_of(one_loop(1, 10))
    after = proc_of(one_loop(1, 5), one_loop(6, 10))
    assert postcheck("split", before, after, Assumptions(),
                     {"loop": "I"}) == []


def test_preexisting_adjacent_loops_are_not_pieces():
    """Two same-variable loops that were already adjacent in the input
    (conv's init + compute idiom) must not be mistaken for split pieces."""
    before = proc_of(one_loop(1, 5), one_loop(7, 10))
    after = proc_of(one_loop(1, 5), one_loop(7, 10))
    assert postcheck("split", before, after, Assumptions(),
                     {"loop": "I"}) == []


def test_unprovable_symbolic_meet_is_silent():
    """MIN/MAX trapezoid bounds the context cannot order stay silent —
    only *provable* overlap or gap is an error."""
    before = proc_of(one_loop(1, "N"))
    after = proc_of(
        one_loop(1, Var("M")), one_loop(Var("K"), "N"),
        params=("N", "M", "K"),
    )
    assert postcheck("split", before, after, Assumptions(),
                     {"loop": "I"}) == []


# --- if_inspection -------------------------------------------------------

def test_if_inspection_needs_guarded_body():
    p = proc_of(do("I", 1, "N", assign(ref("B", "I"), Const(0))))
    assert "legal/if-inspection-shape" in rules_of(
        precheck("if_inspection", p, N2, {"loop": "I"}))


def test_if_inspection_guarded_body_is_silent():
    p = proc_of(
        do("I", 1, "N",
           if_(Compare("ne", ref("B", "I"), Const(0)),
               assign(ref("B", "I"), Const(0))))
    )
    assert precheck("if_inspection", p, N2, {"loop": "I"}) == []


# --- parallelize: the PARALLEL [REDUCTION] DO marker audit ----------------

from repro.ir.build import parallel_do  # noqa: E402


def test_wrong_parallel_marker_flagged():
    p = proc_of(parallel_do("I", 2, "N",
                            assign(ref("B", "I"),
                                   ref("B", Var("I") - Const(1)) + Const(1))))
    diags = precheck("parallelize", p, N2, {})
    assert "legal/par-carried-dep" in rules_of(diags)
    assert all(d.severity == Severity.ERROR for d in diags)


def test_correct_parallel_marker_is_silent():
    p = proc_of(parallel_do("I", 1, "N",
                            assign(ref("B", "I"), ref("B", "I") + Const(1))))
    assert precheck("parallelize", p, N2, {}) == []


def test_parallel_marker_over_scalar_recurrence_flagged():
    p = proc_of(parallel_do("I", 1, "N",
                            assign(ref("B", "I"), Var("T")),
                            assign("T", ref("B", "I") + Const(1))))
    diags = precheck("parallelize", p, N2, {})
    assert "legal/par-carried-dep" in rules_of(diags)


def test_reduction_marker_on_true_accumulation_is_silent():
    p = proc_of(parallel_do("I", 1, "N",
                            assign(ref("B", Const(1)),
                                   ref("B", Const(1)) + ref("A", "I", "I")),
                            kind="reduction"))
    assert precheck("parallelize", p, N2, {}) == []


def test_reduction_marker_over_non_accumulation_flagged():
    # B(1) = I is not acc = acc op term
    p = proc_of(parallel_do("I", 1, "N",
                            assign(ref("B", Const(1)), Var("I") + Const(0)),
                            kind="reduction"))
    diags = precheck("parallelize", p, N2, {})
    assert "legal/par-reduction-shape" in rules_of(diags)


def test_reduction_marker_with_mixed_operators_flagged():
    p = proc_of(
        assign("S", Const(0)),
        parallel_do("I", 1, "N",
                    assign("S", Var("S") + ref("B", "I")),
                    assign("S", Var("S") * Const(2)),
                    kind="reduction"),
    )
    diags = precheck("parallelize", p, N2, {})
    assert "legal/par-reduction-shape" in rules_of(diags)


def test_parallelize_postcheck_audits_planted_markers():
    before = proc_of(do("I", 2, "N",
                        assign(ref("B", "I"),
                               ref("B", Var("I") - Const(1)) + Const(1))))
    after = proc_of(parallel_do("I", 2, "N",
                                assign(ref("B", "I"),
                                       ref("B", Var("I") - Const(1))
                                       + Const(1))))
    diags = postcheck("parallelize", before, after, N2, {})
    assert "legal/par-carried-dep" in rules_of(diags)


def test_parallelize_postcheck_of_real_annotation_is_silent():
    from repro.par.detect import annotate_procedure
    from repro.pipeline.workloads import get_workload

    for name in ("matmul", "conv", "givens"):
        w = get_workload(name)
        proc = w.build()
        ctx = w.context(None)
        marked, _ = annotate_procedure(proc, ctx)
        assert postcheck("parallelize", proc, marked, ctx, {}) == [], name
