"""The open-loop generator: grids, classification, ramp, knee analysis."""

from __future__ import annotations

import pytest

from repro.artifacts import envelope, validate_document
from repro.artifacts.registry import SERVE_LOAD
from repro.daemon import Daemon, DaemonConfig
from repro.errors import LoadError
from repro.load.gen import BUILTIN_GRIDS, _schedule, check_grid, run_grid
from repro.load.report import analyze, flatten_report, validate_report
from repro.obs.core import Histogram


class TestGrid:
    def test_builtin_grids_are_valid(self):
        import json
        for name, grid in BUILTIN_GRIDS.items():
            check_grid(json.loads(json.dumps(grid)))

    def test_rejects_junk(self):
        with pytest.raises(LoadError, match="steps"):
            check_grid({"mix": [{"job": {}}]})
        with pytest.raises(LoadError, match="rate"):
            check_grid({"steps": [{"rate": 0}], "mix": [{"job": {}}]})
        with pytest.raises(LoadError, match="mix"):
            check_grid({"steps": [{"rate": 1}]})
        with pytest.raises(LoadError, match="weight"):
            check_grid({"steps": [{"rate": 1}],
                        "mix": [{"job": {}, "weight": 0}]})

    def test_weighted_schedule_is_deterministic(self):
        mix = [{"job": {"a": 1}, "weight": 3}, {"job": {"b": 2}, "weight": 1}]
        schedule = _schedule(mix)
        assert len(schedule) == 4
        assert schedule.count(mix[0]) == 3


class TestAnalysis:
    def step(self, rate, shed=0, p95=0.1):
        return {
            "rate": rate,
            "outcomes": {"shed": shed} if shed else {},
            "latency": {"request_s": {"p95": p95}},
        }

    def hist(self, values):
        h = Histogram()
        for v in values:
            h.observe(v)
        return h

    def test_knee_is_first_shedding_step(self):
        steps = [self.step(2), self.step(8), self.step(16, shed=3),
                 self.step(32, shed=9)]
        a = analyze(steps, self.hist([0.001]), self.hist([0.3]))
        assert a["knee"]["rate"] == 16 and a["knee"]["shed"] == 3
        assert a["max_clean_rate"] == 8
        assert a["warm_speedup"] == pytest.approx(300.0)

    def test_no_knee_when_nothing_shed(self):
        a = analyze([self.step(2), self.step(8)],
                    self.hist([0.001]), self.hist([0.2]))
        assert a["knee"] is None
        assert a["max_clean_rate"] == 8

    def test_speedup_none_without_both_streams(self):
        a = analyze([self.step(2)], self.hist([]), self.hist([0.2]))
        assert a["warm_speedup"] is None
        assert a["warm_count"] == 0


class TestReportShape:
    def payload(self):
        step = {
            "rate": 2.0, "duration_s": 1.0, "offered": 2, "sent": 2,
            "outcomes": {"computed": 2},
            "latency": {k: Histogram().summary()
                        for k in ("request_s", "hit_s", "computed_s")},
            "throughput": 2.0,
        }
        return {
            "schema": SERVE_LOAD,
            "endpoint": {"host": "h", "port": 1},
            "grid": {"steps": [], "mix": []},
            "steps": [step],
            "analysis": {"knee": None, "max_clean_rate": 2.0,
                         "warm_p50_s": None, "cold_p50_s": None,
                         "warm_speedup": None, "warm_count": 0,
                         "cold_count": 0},
            "elapsed_s": 1.0,
        }

    def test_valid_payload_passes_registry_validation(self):
        env = envelope(self.payload(), producer="t")
        assert validate_document(env) == []

    def test_validator_catches_missing_pieces(self):
        doc = self.payload()
        del doc["steps"][0]["latency"]["hit_s"]
        doc["analysis"].pop("warm_count")
        problems = validate_report(doc)
        assert any("hit_s" in p for p in problems)
        assert any("warm_count" in p for p in problems)

    def test_flatten_emits_load_metrics(self):
        doc = self.payload()
        doc["analysis"]["knee"] = {"step": 0, "rate": 2.0, "shed": 1,
                                   "accepted_p95_s": 0.5}
        metrics = flatten_report(doc)
        assert metrics["load:steps"] == 1.0
        assert metrics["load:offered"] == 2.0
        assert metrics["load:outcomes.computed"] == 2.0
        assert metrics["load:analysis.knee_found"] == 1.0
        assert metrics["load:analysis.knee_rate"] == 2.0
        assert "load:last_step.request_s.p50" in metrics


class TestRampAgainstDaemon:
    def test_short_ramp_end_to_end(self, tmp_path):
        d = Daemon(DaemonConfig(
            workers=1, queue_limit=4,
            store_dir=str(tmp_path / "cache"), backoff_s=0.01,
        )).start()
        try:
            grid = {
                "steps": [{"rate": 4, "duration_s": 0.75},
                          {"rate": 12, "duration_s": 0.75}],
                "mix": [
                    {"weight": 2,
                     "job": {"kind": "probe", "workload": "warm",
                             "options": {"action": "ok", "value": 1}}},
                    {"weight": 1, "unique": True,
                     "job": {"kind": "probe", "workload": "cold",
                             "options": {"action": "ok", "seconds": 0.05},
                             "max_retries": 0}},
                ],
                "deadline_s": 20.0,
            }
            payload = run_grid(grid, "127.0.0.1", d.port)
            assert validate_report(payload) == []
            total = sum(s["offered"] for s in payload["steps"])
            resolved = sum(
                sum(v for k, v in s["outcomes"].items()
                    if k in ("hit", "computed", "retried"))
                for s in payload["steps"]
            )
            shed = sum(s["outcomes"].get("shed", 0)
                       for s in payload["steps"])
            assert resolved + shed == total  # nothing lost or hung
            a = payload["analysis"]
            # the repeated probe warms after its first compute; the
            # unique probes always compute — both streams must exist
            assert a["warm_count"] > 0 and a["cold_count"] > 0
            assert a["warm_p50_s"] < a["cold_p50_s"]
        finally:
            d.request_drain()
            assert d.wait_stopped(30.0)
