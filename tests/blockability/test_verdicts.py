"""The Section 5 blockability study, end to end.

These are the headline results of the reproduction:

- LU without pivoting: BLOCKABLE (derives Fig. 6);
- LU with partial pivoting: BLOCKABLE_WITH_COMMUTATIVITY (derives Fig. 8);
- Householder QR: NOT_BLOCKABLE;
- Givens QR: Fig. 10 derived by the dedicated pipeline, node-for-node
  equal to the paper transcription.
"""

import numpy as np
import pytest

from repro.algorithms import (
    givens_optimized_ir,
    givens_point_ir,
    householder_point_ir,
    lu_pivot_point_ir,
    lu_point_ir,
)
from repro.blockability import Verdict, classify
from repro.blockability.givens import optimize_givens
from repro.check import lint_loop
from repro.runtime import compile_procedure
from repro.runtime.validate import assert_equivalent
from repro.symbolic.assume import Assumptions


class TestLUNoPivot:
    def test_blockable(self):
        r = classify(lu_point_ir(), "K", "KS", ctx=Assumptions().assume_ge("N", 2))
        assert r.verdict == Verdict.BLOCKABLE
        assert r.report.used_index_set_split
        assert not r.report.used_commutativity
        assert_equivalent(lu_point_ir(), r.procedure, {"N": 12, "KS": 4})
        assert "verdict: blockable" in r.describe()
        # the static linter must agree with the transforming driver
        lint = lint_loop(lu_point_ir(), "K",
                         ctx=Assumptions().assume_ge("N", 2))
        assert lint.verdict == r.verdict.value


@pytest.mark.slow
class TestLUPivot:
    def test_blockable_with_commutativity(self):
        r = classify(
            lu_pivot_point_ir(), "K", "KS", ctx=Assumptions().assume_ge("N", 2)
        )
        assert r.verdict == Verdict.BLOCKABLE_WITH_COMMUTATIVITY
        assert r.report.used_commutativity
        # commuted row swaps + column updates: results are identical (the
        # same multiplications happen in the same per-element order)
        assert_equivalent(
            lu_pivot_point_ir(), r.procedure, {"N": 12, "KS": 4}, exact=False
        )
        assert_equivalent(
            lu_pivot_point_ir(), r.procedure, {"N": 13, "KS": 4}, exact=False
        )
        lint = lint_loop(lu_pivot_point_ir(), "K",
                         ctx=Assumptions().assume_ge("N", 2))
        assert lint.verdict == r.verdict.value

    def test_not_blockable_without_commutativity(self):
        r = classify(
            lu_pivot_point_ir(),
            "K",
            "KS",
            ctx=Assumptions().assume_ge("N", 2),
            allow_commutativity=False,
        )
        assert r.verdict == Verdict.NOT_BLOCKABLE
        lint = lint_loop(lu_pivot_point_ir(), "K",
                         ctx=Assumptions().assume_ge("N", 2),
                         allow_commutativity=False)
        assert lint.verdict == r.verdict.value


class TestHouseholder:
    def test_not_blockable(self):
        ctx = Assumptions().assume_ge("M", 2).assume_ge("N", 2).assume_le("N", "M")
        r = classify(householder_point_ir(), "K", "KS", ctx=ctx)
        assert r.verdict == Verdict.NOT_BLOCKABLE
        lint = lint_loop(householder_point_ir(), "K", ctx=ctx)
        assert lint.verdict == r.verdict.value


class TestGivens:
    def test_fig10_derived_exactly(self):
        ctx = Assumptions().assume_ge("M", 2).assume_le("N", "M")
        derived = optimize_givens(givens_point_ir(), ctx)
        assert derived.body == givens_optimized_ir().body

    def test_not_blockable_agrees_with_driver(self):
        ctx = Assumptions().assume_ge("M", 2).assume_le("N", "M")
        r = classify(givens_point_ir(), "L", "LS", ctx=ctx)
        assert r.verdict == Verdict.NOT_BLOCKABLE
        lint = lint_loop(givens_point_ir(), "L", ctx=ctx)
        assert lint.verdict == r.verdict.value

    def test_derived_is_bitwise_equivalent(self):
        ctx = Assumptions().assume_ge("M", 2).assume_le("N", "M")
        derived = optimize_givens(givens_point_ir(), ctx)
        rng = np.random.default_rng(11)
        for m, n in ((9, 6), (6, 6), (8, 3)):
            a = rng.uniform(-1, 1, (m, n))
            a[rng.uniform(size=(m, n)) < 0.25] = 0.0
            r1 = compile_procedure(givens_point_ir())({"M": m, "N": n}, arrays={"A": a})
            r2 = compile_procedure(derived)({"M": m, "N": n}, arrays={"A": a})
            assert np.array_equal(r1["A"], r2["A"])
