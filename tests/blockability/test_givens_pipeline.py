"""Details of the Givens optimization pipeline (Sec. 5.4)."""

import numpy as np
import pytest

from repro.algorithms import givens_point_ir
from repro.analysis.refs import collect_accesses
from repro.blockability.givens import optimize_givens
from repro.errors import TransformError
from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import ArrayRef, Compare, Const, Var
from repro.ir.stmt import ArrayDecl, If, Loop, Procedure
from repro.ir.visit import find_loops, loop_by_var, walk_stmts
from repro.machine.model import scaled_machine
from repro.machine.tracer import trace_procedure
from repro.symbolic.assume import Assumptions


def ctx():
    return Assumptions().assume_ge("M", 2).assume_le("N", "M")


class TestPipelineSteps:
    def test_log_records_paper_order(self):
        log = []
        optimize_givens(givens_point_ir(), ctx(), log)
        text = " | ".join(log)
        assert text.index("index-set split") < text.index("scalar-expanded")
        assert text.index("scalar-expanded") < text.index("IF-inspection")
        assert text.index("IF-inspection") < text.index("interchanged J inside K")

    def test_rotation_coefficients_become_arrays(self):
        out = optimize_givens(givens_point_ir(), ctx())
        assert {"C", "S"} <= out.array_names

    def test_executor_loop_order_is_k_jn_j(self):
        out = optimize_givens(givens_point_ir(), ctx())
        l_loop = loop_by_var(out.body, "L")
        k = next(s for s in l_loop.body if isinstance(s, Loop) and s.var == "K")
        assert [l.var for l in find_loops(k)] == ["K", "JN", "J"]

    def test_executor_is_guard_free(self):
        out = optimize_givens(givens_point_ir(), ctx())
        l_loop = loop_by_var(out.body, "L")
        k = next(s for s in l_loop.body if isinstance(s, Loop) and s.var == "K")
        assert not any(isinstance(s, If) for s in walk_stmts(k.body))

    def test_wrong_shape_rejected(self):
        p = Procedure(
            "x", ("N",), (ArrayDecl("A", (Var("N"),)),),
            (do("J", 1, "N", assign(ref("A", "J"), 0.0)),),
        )
        with pytest.raises((TransformError, KeyError)):
            optimize_givens(p, Assumptions())


class TestMemoryBehaviour:
    def test_stride_story(self):
        """The whole point of Fig. 10: trailing-sweep accesses to A become
        stride-one.  Count cache misses on array A for both versions."""
        from repro.bench.experiments import givens_opt_measured

        m = scaled_machine(4)
        n = 64
        rng = np.random.default_rng(1)
        a = np.asfortranarray(rng.uniform(0.1, 1.0, (n, n)))
        t_point = trace_procedure(givens_point_ir(), {"M": n, "N": n}, m, arrays={"A": a})
        t_opt = trace_procedure(givens_opt_measured(), {"M": n, "N": n}, m, arrays={"A": a})
        assert t_opt.per_array_misses["A"] < t_point.per_array_misses["A"] / 2
