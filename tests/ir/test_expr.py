"""Expression node construction, smart constructors, operator overloads."""

import pytest

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Compare,
    Const,
    IntDiv,
    LogicalOp,
    Max,
    Min,
    Not,
    Var,
    add,
    as_expr,
    free_vars,
    mul,
    smax,
    smin,
    sub,
)


class TestConstruction:
    def test_const_and_var(self):
        assert Const(3).value == 3
        assert Var("I").name == "I"

    def test_as_expr_coercions(self):
        assert as_expr(5) == Const(5)
        assert as_expr(2.5) == Const(2.5)
        assert as_expr("N") == Var("N")
        e = Var("I")
        assert as_expr(e) is e

    def test_as_expr_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            as_expr(True)
        with pytest.raises(TypeError):
            as_expr([1, 2])

    def test_binop_validates_op(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1), Const(2))

    def test_min_max_need_two_args(self):
        with pytest.raises(ValueError):
            Min((Const(1),))
        with pytest.raises(ValueError):
            Max((Const(1),))

    def test_arrayref_needs_subscripts(self):
        with pytest.raises(ValueError):
            ArrayRef("A", ())
        assert ArrayRef("A", (Var("I"), Var("J"))).rank == 2

    def test_compare_validates_and_negates(self):
        c = Compare("lt", Var("I"), Var("N"))
        assert c.negate() == Compare("ge", Var("I"), Var("N"))
        with pytest.raises(ValueError):
            Compare("<<", Var("I"), Var("N"))

    def test_logicalop_validates(self):
        with pytest.raises(ValueError):
            LogicalOp("xor", (Const(1), Const(2)))


class TestOperatorOverloads:
    def test_add_builds_tree(self):
        e = Var("I") + 1
        assert e == BinOp("+", Var("I"), Const(1))

    def test_radd_rsub_rmul(self):
        assert 1 + Var("I") == BinOp("+", Const(1), Var("I"))
        assert 3 - Var("I") == BinOp("-", Const(3), Var("I"))
        assert (2 * Var("I")) == BinOp("*", Const(2), Var("I"))

    def test_structural_equality_is_preserved(self):
        # `==` compares trees; named comparison builders make IR nodes
        assert (Var("I") == Var("I")) is True
        assert Var("I").lt("N") == Compare("lt", Var("I"), Var("N"))
        assert Var("I").eq_(0) == Compare("eq", Var("I"), Const(0))

    def test_neg(self):
        assert -Var("I") == BinOp("*", Const(-1), Var("I"))


class TestSmartConstructors:
    def test_constant_folding(self):
        assert add(2, 3) == Const(5)
        assert sub(7, 2) == Const(5)
        assert mul(4, 3) == Const(12)

    def test_identities(self):
        i = Var("I")
        assert add(i, 0) == i
        assert add(0, i) == i
        assert sub(i, 0) == i
        assert mul(i, 1) == i
        assert mul(1, i) == i

    def test_sub_self_is_zero(self):
        assert sub(Var("I"), Var("I")) == Const(0)

    def test_nested_constant_merge(self):
        # (I + 2) + 3 -> I + 5
        e = add(add(Var("I"), 2), 3)
        assert e == BinOp("+", Var("I"), Const(5))

    def test_smin_flattens_and_dedups(self):
        e = smin(smin(Var("A"), Var("B")), Var("A"), 5, 7)
        assert isinstance(e, Min)
        assert e.args == (Var("A"), Var("B"), Const(5))

    def test_smax_collapses_to_single(self):
        assert smax(Var("A"), Var("A")) == Var("A")

    def test_smin_constants_combine(self):
        assert smin(3, 9) == Const(3)
        assert smax(3, 9) == Const(9)


class TestFreeVars:
    def test_covers_every_node_kind(self):
        e = Min(
            (
                BinOp("+", Var("I"), IntDiv(Var("N"), Const(2))),
                Call("SQRT", (ArrayRef("A", (Var("J"),)),)),
            )
        )
        assert free_vars(e) == {"I", "N", "J"}

    def test_logical_and_not(self):
        e = Not(LogicalOp("and", (Var("P").eq_(1), Var("Q").eq_(0))))
        assert free_vars(e) == {"P", "Q"}

    def test_array_name_not_included(self):
        assert free_vars(ArrayRef("A", (Var("I"),))) == {"I"}
