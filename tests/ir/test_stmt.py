"""Statement and procedure node invariants."""

import pytest

from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.stmt import ArrayDecl, Assign, BlockLoop, If, InLoop, Loop, Procedure


class TestAssign:
    def test_target_must_be_lvalue(self):
        with pytest.raises(TypeError):
            Assign(Const(1), Const(2))

    def test_label_preserved(self):
        s = Assign(Var("X"), Const(1), label="10")
        assert s.label == "10"


class TestLoop:
    def test_single_stmt_body_is_wrapped(self):
        body = assign("X", 1)
        l = Loop("I", Const(1), Var("N"), body)
        assert l.body == (body,)

    def test_default_step_is_one(self):
        l = do("I", 1, "N", assign("X", 1))
        assert l.step == Const(1)

    def test_with_bounds_and_body(self):
        l = do("I", 1, "N", assign("X", 1))
        l2 = l.with_bounds(lo=2, hi="M")
        assert (l2.lo, l2.hi) == (Const(2), Var("M"))
        assert l2.body == l.body
        l3 = l.with_body(assign("Y", 2))
        assert l3.body == (assign("Y", 2),)

    def test_needs_var_name(self):
        with pytest.raises(ValueError):
            Loop("", Const(1), Const(2), (assign("X", 1),))


class TestIf:
    def test_bodies_normalized_to_tuples(self):
        s = If(Var("P").eq_(1), (assign("X", 1),), (assign("X", 2),))
        assert isinstance(s.then, tuple) and isinstance(s.els, tuple)

    def test_empty_else_default(self):
        s = If(Var("P").eq_(1), (assign("X", 1),))
        assert s.els == ()


class TestArrayDecl:
    def test_itemsize_by_dtype(self):
        assert ArrayDecl("A", (Var("N"),), "f8").itemsize == 8
        assert ArrayDecl("A", (Var("N"),), "f4").itemsize == 4
        assert ArrayDecl("K", (Var("N"),), "i8").itemsize == 8

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", (Var("N"),), "c16")

    def test_dims_coerced(self):
        d = ArrayDecl("A", (5, "N"))
        assert d.dims == (Const(5), Var("N"))
        assert d.rank == 2


class TestProcedure:
    def _proc(self):
        return Procedure(
            "p",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (do("I", 1, "N", assign(ref("A", "I"), 0.0)),),
        )

    def test_array_lookup(self):
        p = self._proc()
        assert p.array("A").name == "A"
        with pytest.raises(KeyError):
            p.array("B")
        assert p.array_names == {"A"}

    def test_duplicate_decl_rejected(self):
        with pytest.raises(ValueError):
            Procedure(
                "p",
                (),
                (ArrayDecl("A", (Const(3),)), ArrayDecl("A", (Const(4),))),
                (assign("X", 1),),
            )

    def test_adding_arrays_dedups(self):
        p = self._proc()
        p2 = p.adding_arrays(ArrayDecl("B", (Var("N"),)), ArrayDecl("A", (Const(9),)))
        assert p2.array_names == {"A", "B"}
        # existing A kept, not replaced
        assert p2.array("A").dims == (Var("N"),)

    def test_adding_params_dedups_and_appends(self):
        p = self._proc()
        p2 = p.adding_params("KS", "N")
        assert p2.params == ("N", "KS")

    def test_structural_equality(self):
        assert self._proc() == self._proc()


class TestExtensions:
    def test_blockloop_and_inloop_shapes(self):
        b = BlockLoop("K", Const(1), Var("N"), (assign("X", 1),))
        assert b.body == (assign("X", 1),)
        i = InLoop("K", "KK", (assign("X", 1),))
        assert i.lo is None and i.hi is None
