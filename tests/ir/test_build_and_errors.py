"""Builder DSL conveniences and the error hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    MachineError,
    ParseError,
    ReproError,
    SemanticsError,
    TransformError,
)
from repro.ir.build import assign, block_do, do, if_, in_do, ref, sym
from repro.ir.expr import ArrayRef, Const, Var
from repro.ir.stmt import Assign, BlockLoop, If, InLoop, Loop


class TestBuilders:
    def test_ref_coerces(self):
        r = ref("A", "I", 2)
        assert r == ArrayRef("A", (Var("I"), Const(2)))

    def test_assign_string_target_is_scalar(self):
        s = assign("TAU", 0.0)
        assert s.target == Var("TAU")

    def test_do_with_step_and_label(self):
        l = do("K", 1, "N", assign("X", 1), step="KS", label="10")
        assert l.step == Var("KS") and l.label == "10"

    def test_if_single_statement_bodies(self):
        s = if_(Var("P").eq_(1), assign("X", 1), assign("X", 2))
        assert isinstance(s, If)
        assert len(s.then) == 1 and len(s.els) == 1

    def test_extensions(self):
        b = block_do("K", 1, "N", in_do("K", "KK", assign("X", 1)))
        assert isinstance(b, BlockLoop)
        assert isinstance(b.body[0], InLoop)

    def test_sym(self):
        assert sym("N") == Var("N")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls", [ParseError, AnalysisError, TransformError, SemanticsError, MachineError]
    )
    def test_all_are_repro_errors(self, cls):
        if cls is ParseError:
            err = cls("bad", line=3)
            assert "line 3" in str(err)
        else:
            err = cls("bad")
        assert isinstance(err, ReproError)

    def test_catching_the_base_class(self):
        from repro.runtime.interpreter import idiv

        with pytest.raises(ReproError):
            idiv(1, 0)
