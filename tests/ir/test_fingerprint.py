"""Structural fingerprints: equal IR hashes equal, renamed IR differs."""

from __future__ import annotations

import pytest

from repro.algorithms import conv_ir, givens_point_ir, lu_point_ir
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.fingerprint import ir_fingerprint, ir_size
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import substitute


def test_equal_ir_equal_fingerprint():
    a, b = lu_point_ir(), lu_point_ir()
    assert a is not b and a == b
    assert ir_fingerprint(a) == ir_fingerprint(b)


def test_fingerprint_is_stable_across_calls():
    p = givens_point_ir()
    assert ir_fingerprint(p) == ir_fingerprint(p)


def test_distinct_algorithms_differ():
    fps = {ir_fingerprint(p()) for p in (lu_point_ir, givens_point_ir, conv_ir)}
    assert len(fps) == 3


def test_renamed_variable_changes_fingerprint():
    body = assign(ref("A", "I"), Const(0.0))
    loop_i = do("I", 1, "N", body)
    loop_j = do("J", 1, "N", assign(ref("A", "J"), Const(0.0)))
    assert loop_i != loop_j
    assert ir_fingerprint(loop_i) != ir_fingerprint(loop_j)
    # renaming only the reference (not the loop header) also changes it
    half_renamed = do("I", 1, "N", assign(ref("A", "J"), Const(0.0)))
    assert ir_fingerprint(loop_i) != ir_fingerprint(half_renamed)


def test_substituted_procedure_body_changes_fingerprint():
    p = lu_point_ir()
    renamed = substitute(p.body[0], {"N": Var("M")})
    assert ir_fingerprint(renamed) != ir_fingerprint(p.body[0])


def test_const_type_distinction():
    # integer 0 and float 0.0 are different programs (int division!)
    assert ir_fingerprint(Const(0)) != ir_fingerprint(Const(0.0))
    assert ir_fingerprint(Const(1)) != ir_fingerprint(Const(True))


def test_expr_vs_var_name_collision_resists():
    # token stream must not let (Var "AB") collide with (Var "A", Var "B")
    a = (Var("AB"),)
    b = (Var("A"), Var("B"))
    assert ir_fingerprint(a) != ir_fingerprint(b)


def test_body_sequences_fingerprintable():
    p = lu_point_ir()
    assert ir_fingerprint(p.body) == ir_fingerprint(tuple(p.body))
    assert ir_fingerprint(p.body) != ir_fingerprint(p)


def test_ir_size_counts_grow_with_program():
    small = Procedure(
        "tiny",
        ("N",),
        (ArrayDecl("A", (Var("N"),)),),
        (do("I", 1, "N", assign(ref("A", "I"), Const(0.0))),),
    )
    assert ir_size(small) < ir_size(lu_point_ir())
    assert ir_size(Const(1)) == 1


def test_unknown_object_rejected():
    with pytest.raises(TypeError):
        ir_fingerprint(object())
