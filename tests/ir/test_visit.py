"""Traversal, substitution, and loop-replacement machinery."""

import pytest

from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import ArrayRef, Const, Var
from repro.ir.stmt import Assign, If, Loop, Procedure, ArrayDecl
from repro.ir.visit import (
    array_refs,
    find_loops,
    loop_by_var,
    loop_path,
    rename_loop_var,
    replace_loop,
    strip_labels,
    substitute,
    walk_exprs,
    walk_stmts,
)


def nest():
    return do(
        "I",
        1,
        "N",
        assign("T", ref("A", "I")),
        do("J", "I", "N", assign(ref("A", "J"), ref("A", "J") + Var("T"))),
        if_(Var("T").gt(0), [assign(ref("B", "I"), Var("T"))]),
    )


class TestWalkers:
    def test_walk_stmts_preorder(self):
        kinds = [type(s).__name__ for s in walk_stmts(nest())]
        assert kinds == ["Loop", "Assign", "Loop", "Assign", "If", "Assign"]

    def test_walk_exprs_covers_bounds_and_conditions(self):
        names = {e.name for e in walk_exprs(nest()) if isinstance(e, Var)}
        assert {"I", "J", "N", "T"} <= names

    def test_array_refs(self):
        arrays = {r.array for r in array_refs(nest())}
        assert arrays == {"A", "B"}

    def test_find_loops_and_lookup(self):
        loops = find_loops(nest())
        assert [l.var for l in loops] == ["I", "J"]
        assert loop_by_var(nest(), "J").var == "J"
        with pytest.raises(KeyError):
            loop_by_var(nest(), "Z")

    def test_loop_by_var_ambiguous(self):
        body = (do("I", 1, 2, assign("X", 1)), do("I", 3, 4, assign("X", 2)))
        with pytest.raises(ValueError):
            loop_by_var(body, "I")


class TestSubstitute:
    def test_expr_substitution(self):
        e = substitute(Var("I") + Var("N"), {"I": Var("II")})
        assert e == Var("II") + Var("N")

    def test_stmt_substitution_reaches_subscripts_and_bounds(self):
        from repro.symbolic.simplify import simplify

        l = do("J", Var("I"), "N", assign(ref("A", Var("I") + 1), 0.0))
        out = substitute(l, {"I": Const(5)})
        assert out.lo == Const(5)
        # substitution is structural; folding is the simplifier's job
        assert simplify(out.body[0].target) == ArrayRef("A", (Const(6),))

    def test_capture_is_rejected(self):
        l = do("J", 1, "N", assign(ref("A", "J"), 0.0))
        with pytest.raises(ValueError):
            substitute(l, {"J": Var("K")})

    def test_rename_loop_var(self):
        l = do("I", 1, "N", assign(ref("A", "I"), Var("I") + 1))
        r = rename_loop_var(l, "II")
        assert r.var == "II"
        assert r.body[0].target == ArrayRef("A", (Var("II"),))


class TestReplaceLoop:
    def test_replace_inner_loop_with_two(self):
        outer = nest()
        proc = Procedure("p", ("N",), (ArrayDecl("A", (Var("N"),)), ArrayDecl("B", (Var("N"),))), (outer,))
        j = loop_by_var(proc.body, "J")
        first = j.with_bounds(hi=Const(5))
        second = j.with_bounds(lo=Const(6))
        out = replace_loop(proc, j, (first, second))
        assert [l.var for l in find_loops(out)] == ["I", "J", "J"]

    def test_replace_missing_loop_raises(self):
        proc = Procedure("p", ("N",), (ArrayDecl("A", (Var("N"),)), ArrayDecl("B", (Var("N"),))), (nest(),))
        stranger = do("Q", 1, 2, assign("X", 1))
        with pytest.raises(ValueError):
            replace_loop(proc, stranger, stranger)

    def test_loop_path(self):
        outer = nest()
        j = loop_by_var((outer,), "J")
        path = loop_path((outer,), j)
        assert [l.var for l in path] == ["I", "J"]
        with pytest.raises(KeyError):
            loop_path((outer,), do("Q", 1, 2, assign("X", 1)))


class TestStripLabels:
    def test_labels_removed_everywhere(self):
        l = Loop("I", Const(1), Var("N"), (Assign(Var("X"), Const(1), label="10"),), label="10")
        out = strip_labels(l)
        assert out.label is None
        assert out.body[0].label is None
