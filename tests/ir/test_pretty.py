"""Fortran-style pretty printing."""

from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import (
    Call,
    Compare,
    Const,
    IntDiv,
    LogicalOp,
    Max,
    Min,
    Not,
    Var,
)
from repro.ir.pretty import fmt_expr, to_fortran
from repro.ir.stmt import ArrayDecl, Procedure


class TestExprFormatting:
    def test_precedence_parens(self):
        e = (Var("A") + Var("B")) * Var("C")
        assert fmt_expr(e) == "(A + B) * C"

    def test_no_spurious_parens(self):
        e = Var("A") + Var("B") * Var("C")
        assert fmt_expr(e) == "A + B * C"

    def test_left_assoc_subtraction(self):
        from repro.ir.expr import BinOp

        e = BinOp("-", Var("A"), BinOp("-", Var("B"), Var("C")))
        assert fmt_expr(e) == "A - (B - C)"

    def test_negative_constant_prints_as_subtraction(self):
        from repro.ir.expr import BinOp

        e = BinOp("+", Var("N"), Const(-1))
        assert fmt_expr(e) == "N - 1"

    def test_min_max_call(self):
        assert fmt_expr(Min((Var("A"), Var("B")))) == "MIN(A, B)"
        assert fmt_expr(Max((Var("A"), Const(0)))) == "MAX(A, 0)"
        assert fmt_expr(Call("DSQRT", (Var("X"),))) == "DSQRT(X)"

    def test_relational_dots(self):
        assert fmt_expr(Compare("ne", Var("X"), Const(0.0))) == "X .NE. 0.0"

    def test_logical(self):
        e = LogicalOp("and", (Var("P").eq_(1), Not(Var("Q").eq_(2))))
        assert ".AND." in fmt_expr(e)
        assert ".NOT." in fmt_expr(e)

    def test_intdiv(self):
        assert fmt_expr(IntDiv(Var("J") - Var("B"), Const(2))) == "(J - B) / 2"


class TestProcedurePrinting:
    def test_full_procedure(self):
        p = Procedure(
            "demo",
            ("N",),
            (ArrayDecl("A", (Var("N"),)), ArrayDecl("K", (Var("N"),), "i8")),
            (
                do(
                    "I",
                    1,
                    "N",
                    if_(
                        ref("A", "I").ne_(0.0),
                        [assign(ref("A", "I"), ref("A", "I") * 2.0)],
                        [assign(ref("K", "I"), 0)],
                    ),
                ),
            ),
        )
        text = to_fortran(p)
        assert "SUBROUTINE demo(N)" in text
        assert "DOUBLE PRECISION A(N)" in text
        assert "INTEGER K(N)" in text
        assert "DO I = 1, N" in text
        assert "ELSE" in text
        assert text.strip().endswith("END")

    def test_step_printed_only_when_not_one(self):
        assert ", KS" in to_fortran(do("K", 1, "N", assign("X", 1), step="KS"))
        assert to_fortran(do("K", 1, "N", assign("X", 1))).count(",") == 1
