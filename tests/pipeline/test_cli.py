"""The ``python -m repro.pipeline`` front end, driven in-process."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import is_envelope, payload_of
from repro.pipeline.cli import main
from repro.pipeline.trace import SCHEMA


class TestListing:
    def test_list_algorithms(self, capsys):
        assert main(["--list-algorithms"]) == 0
        out = capsys.readouterr().out
        assert "lu_nopivot" in out and "givens" in out and "conv" in out

    def test_list_passes(self, capsys):
        assert main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "block" in out and "if_inspection" in out


class TestUsageErrors:
    def test_missing_algorithm(self, capsys):
        assert main([]) == 2
        assert "--algorithm is required" in capsys.readouterr().err

    def test_unknown_algorithm(self, capsys):
        assert main(["-a", "cholesky"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_pass(self, capsys):
        assert main(["-a", "conv", "-p", "fuse"]) == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_bad_sizes_syntax(self, capsys):
        assert main(["-a", "conv", "--verify", "--sizes", "N1"]) == 2
        assert "bad --sizes" in capsys.readouterr().err


class TestDerivationRun:
    def test_conv_default_pipeline_with_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        rc = main(
            ["-a", "conv", "--trace", str(trace_path), "--verify", "--cache-stats"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "conv: 3 pass(es)" in out
        assert "verified" in out
        assert "cache[" in out
        doc = json.loads(trace_path.read_text())
        assert is_envelope(doc)
        assert f"{doc['schema']}/{doc['schema_version']}" == SCHEMA
        trace = payload_of(doc)
        assert trace["schema"] == SCHEMA
        assert trace["algorithm"] == "conv"
        assert [s["pass"] for s in trace["spans"]] == ["split", "jam", "scalars"]
        assert all(s["status"] == "applied" for s in trace["spans"])
        assert all(s["verify"]["ok"] for s in trace["spans"])

    def test_infeasible_raise_is_usage_error_but_trace_lands(
        self, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        rc = main(
            [
                "-a",
                "conv",
                "-p",
                "if_inspection",  # conv has no guarded loop: infeasible
                "--on-infeasible",
                "raise",
                "--trace",
                str(trace_path),
            ]
        )
        assert rc == 2
        assert "infeasible" in capsys.readouterr().err
        trace = payload_of(json.loads(trace_path.read_text()))
        assert trace["spans"][0]["status"] == "infeasible"

    def test_print_ir_emits_fortran(self, capsys):
        assert main(["-a", "conv", "-p", "scalars", "--print-ir"]) == 0
        assert "DO" in capsys.readouterr().out


@pytest.mark.slow
class TestAcceptanceCommand:
    def test_issue_acceptance_invocation(self, tmp_path, capsys):
        """The ISSUE.md acceptance run, verbatim (minus the shell)."""
        trace_path = tmp_path / "out.json"
        rc = main(
            [
                "--algorithm",
                "lu_nopivot",
                "--passes",
                "split,block,jam",
                "--trace",
                str(trace_path),
                "--verify",
            ]
        )
        assert rc == 0
        trace = payload_of(json.loads(trace_path.read_text()))
        assert len(trace["spans"]) == 3
        statuses = {s["pass"]: s["status"] for s in trace["spans"]}
        assert statuses["block"] == "applied"
        assert statuses["jam"] == "applied"
