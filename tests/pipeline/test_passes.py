"""The pass registry: named passes must equal the transforms they wrap."""

from __future__ import annotations

import pytest

from repro.algorithms import conv_ir, lu_point_ir
from repro.errors import PipelineError
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.pipeline import passes
from repro.pipeline.manager import run_passes
from repro.symbolic.assume import Assumptions
from repro.transform.blocking import block_loop
from repro.transform.unroll_jam import unroll_and_jam


def lu_ctx() -> Assumptions:
    return Assumptions().assume_ge("N", 2)


class TestRegistry:
    def test_known_passes_present(self):
        names = {i.name for i in passes.available_passes()}
        assert {
            "split",
            "stripmine",
            "interchange",
            "jam",
            "if_inspection",
            "scalars",
            "distribute",
            "block",
            "givens_opt",
        } <= names

    def test_unknown_pass_rejected(self):
        with pytest.raises(PipelineError, match="unknown pass"):
            passes.get_pass("fuse")

    def test_duplicate_registration_rejected(self):
        info = passes.get_pass("block").info
        with pytest.raises(PipelineError, match="registered twice"):
            passes.register(info, lambda p, c, o: None, lambda p, c, o: None)

    def test_infos_document_options(self):
        block = passes.get_pass("block").info
        assert "loop" in block.options and "factor" in block.options
        assert block.precondition


class TestBlockPass:
    def test_matches_direct_block_loop(self):
        proc = lu_point_ir()
        direct, report = block_loop(proc, "K", "KS", ctx=lu_ctx())
        result = run_passes(
            proc, [("block", {"loop": "K", "factor": "KS"})], ctx=lu_ctx()
        )
        assert result.procedure == direct
        assert result.spans[0].status == "applied"
        assert (
            result.artifact("block").blocked_innermost == report.blocked_innermost
        )
        assert result.spans[0].detail["blocked_innermost"] > 0

    def test_symbolic_factor_grows_context(self):
        # block emits KS >= 2 so later passes reason under the paper's
        # "block size at least 2" assumption.
        result = run_passes(
            lu_point_ir(), [("block", {"loop": "K", "factor": "KS"})], ctx=lu_ctx()
        )
        assert result.ctx.implies_le(Const(2), Var("KS"))


class TestJamPass:
    def test_rectangular_matches_unroll_and_jam(self):
        p = Procedure(
            "rect",
            ("N",),
            (ArrayDecl("A", (Var("N"), Var("N"))),),
            (
                do(
                    "J",
                    1,
                    "N",
                    do(
                        "I",
                        1,
                        "N",
                        assign(ref("A", "I", "J"), ref("A", "I", "J") * 2.0),
                    ),
                ),
            ),
        )
        ctx = Assumptions().assume_ge("N", 1)
        direct = unroll_and_jam(p, p.body[0], 2, ctx=ctx)
        result = run_passes(p, [("jam", {"loop": "J", "unroll": 2})], ctx=ctx)
        assert result.procedure == direct
        assert result.spans[0].status == "applied"


class TestSplitPass:
    def test_trapezoid_split_applies_to_conv(self):
        ctx = (
            Assumptions()
            .assume_ge("N1", 1)
            .assume_ge("N3", 1)
            .assume_ge("N2", 4)
            .assume_le("N2", Var("N1") - Const(1))
            .assume_le("N3", "N1")
        )
        result = run_passes(conv_ir(), [("split", {"loop": "I"})], ctx=ctx)
        span = result.spans[0]
        assert span.status == "applied"
        assert span.detail["splits"] >= 1
        assert result.procedure != conv_ir()


class TestNoopVsInfeasible:
    def test_scalars_without_reuse_is_noop(self):
        p = Procedure(
            "plain",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (do("I", 1, "N", assign(ref("A", "I"), Const(0.0))),),
        )
        result = run_passes(p, ["scalars"])
        assert result.spans[0].status == "noop"
        assert result.procedure == p

    def test_missing_loop_is_infeasible_not_error(self):
        p = Procedure("empty", (), (), (assign(Var("X"), Const(1)),))
        result = run_passes(p, [("block", {"loop": "K"})], on_infeasible="skip")
        assert result.spans[0].status == "infeasible"
        assert result.procedure == p


class TestParallelize:
    def test_registered_with_options(self):
        info = passes.get_pass("parallelize").info
        assert "loop" in info.options
        assert info.precondition

    def test_annotates_matmul(self):
        from repro.ir.stmt import ParallelLoop
        from repro.ir.visit import walk_stmts
        from repro.pipeline.workloads import get_workload

        w = get_workload("matmul")
        result = run_passes(w.build(), ["parallelize"], ctx=w.context(None))
        span = result.spans[0]
        assert span.status == "applied"
        assert span.detail["parallel"] == 2
        assert span.detail["reduction"] == 1
        assert span.detail["serial"] == 0
        marked = [s for s in walk_stmts(result.procedure)
                  if isinstance(s, ParallelLoop)]
        assert len(marked) == 3

    def test_loop_option_restricts_annotation(self):
        from repro.ir.stmt import ParallelLoop
        from repro.ir.visit import walk_stmts
        from repro.pipeline.workloads import get_workload

        w = get_workload("matmul")
        result = run_passes(
            w.build(), [("parallelize", {"loop": "J"})], ctx=w.context(None)
        )
        marked = [s for s in walk_stmts(result.procedure)
                  if isinstance(s, ParallelLoop)]
        assert [m.var for m in marked] == ["J"]

    def test_all_serial_workload_is_noop(self):
        from repro.pipeline.workloads import get_workload

        w = get_workload("lu_nopivot")
        result = run_passes(w.build(), ["parallelize"], ctx=w.context(None))
        assert result.spans[0].status == "noop"
        assert result.spans[0].detail["serial"] == 4
        assert result.procedure == w.build()

    def test_missing_loop_is_infeasible(self):
        from repro.pipeline.workloads import get_workload

        w = get_workload("matmul")
        result = run_passes(
            w.build(), [("parallelize", {"loop": "Z"})],
            ctx=w.context(None), on_infeasible="skip",
        )
        assert result.spans[0].status == "infeasible"

    def test_check_mode_accepts_the_annotation(self):
        from repro.pipeline.workloads import get_workload

        w = get_workload("conv")
        result = run_passes(
            w.build(), ["parallelize"], ctx=w.context(None), check=True
        )
        assert result.spans[0].status == "applied"
