"""PassManager: spans, trace schema, failure policy, verifier pinpointing."""

from __future__ import annotations

import pytest

from repro.algorithms import lu_point_ir
from repro.errors import PipelineError, TransformError, VerificationError
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.fingerprint import ir_fingerprint
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import substitute
from repro.pipeline import passes
from repro.pipeline.cache import AnalysisCache
from repro.pipeline.manager import PassManager, PassSpec, run_passes
from repro.pipeline.passes import PassInfo, PassOutcome
from repro.pipeline.trace import SCHEMA
from repro.pipeline.verify import DifferentialVerifier
from repro.symbolic.assume import Assumptions


def setter_proc() -> Procedure:
    # pure stores: no reuse, so "scalars" is a clean no-op on this one
    return Procedure(
        "setter",
        ("N",),
        (ArrayDecl("A", (Var("N"),)),),
        (do("I", 1, "N", assign(ref("A", "I"), Var("I") * 2.0)),),
    )


@pytest.fixture
def temp_pass():
    """Register throwaway passes for one test; always deregister."""
    added = []

    def add(name, run, precheck=lambda p, c, o: None, **info_kw):
        passes.register(PassInfo(name, f"test pass {name}", **info_kw), precheck, run)
        added.append(name)

    yield add
    for name in added:
        passes._REGISTRY.pop(name, None)


class TestTraceSchema:
    def test_trace_shape_and_span_chaining(self):
        result = run_passes(
            lu_point_ir(),
            [PassSpec("block", {"loop": "K", "factor": "KS"}), "scalars"],
            ctx=Assumptions().assume_ge("N", 2),
            cache=AnalysisCache(),
            algorithm="lu_nopivot",
        )
        trace = result.trace
        assert trace["schema"] == SCHEMA
        assert trace["algorithm"] == "lu_nopivot"
        assert trace["procedure"] == lu_point_ir().name
        assert trace["passes"] == ["block", "scalars"]
        assert trace["verify_enabled"] is False
        assert trace["elapsed_s"] >= 0
        assert set(trace["cache"]) == set(AnalysisCache.REGIONS)
        assert len(trace["spans"]) == 2
        for i, span in enumerate(trace["spans"]):
            assert span["index"] == i
            assert span["status"] in ("applied", "noop", "infeasible", "error")
            assert span["wall_s"] >= 0
            assert span["ir_size_before"] > 0
        # each span consumes exactly what the previous one produced
        assert (
            trace["spans"][1]["input_fingerprint"]
            == trace["spans"][0]["output_fingerprint"]
        )
        assert trace["spans"][0]["input_fingerprint"] == ir_fingerprint(
            lu_point_ir()
        )

    def test_trace_is_json_serializable(self):
        import json

        result = run_passes(setter_proc(), ["scalars"], cache=AnalysisCache())
        json.dumps(result.trace)  # must not raise


class TestInfeasiblePolicy:
    SPECS = [("block", {"loop": "ZZ"}), ("scalars", {})]

    def test_skip_continues_past_infeasible(self):
        result = run_passes(
            setter_proc(), self.SPECS, on_infeasible="skip", cache=AnalysisCache()
        )
        assert [s.status for s in result.spans] == ["infeasible", "noop"]
        assert not result.stopped

    def test_stop_halts_the_pipeline(self):
        result = run_passes(
            setter_proc(), self.SPECS, on_infeasible="stop", cache=AnalysisCache()
        )
        assert [s.status for s in result.spans] == ["infeasible"]
        assert result.stopped

    def test_raise_carries_partial_result(self):
        with pytest.raises(PipelineError, match="infeasible") as ei:
            run_passes(
                setter_proc(),
                self.SPECS,
                on_infeasible="raise",
                cache=AnalysisCache(),
            )
        partial = ei.value.result
        assert partial.spans[0].status == "infeasible"
        assert partial.procedure == setter_proc()

    def test_bad_policy_rejected(self):
        with pytest.raises(PipelineError):
            PassManager(["scalars"], on_infeasible="abort")

    def test_unknown_pass_fails_at_construction(self):
        with pytest.raises(PipelineError, match="unknown pass"):
            PassManager(["nope"])


class TestErrorStatus:
    def test_transform_error_becomes_error_span(self, temp_pass):
        def boom(proc, ctx, options):
            raise TransformError("deliberate failure")

        temp_pass("explode", boom)
        result = run_passes(
            setter_proc(),
            ["explode", "scalars"],
            on_infeasible="skip",
            cache=AnalysisCache(),
        )
        assert result.spans[0].status == "error"
        assert "deliberate failure" in result.spans[0].error
        assert result.spans[1].status == "noop"  # pipeline continued


class TestVerifierPinpointing:
    def test_breaking_pass_is_named(self, temp_pass):
        # "shrink" silently drops the last iteration — a classic
        # miscompile.  The differential verifier must name it.
        def shrink(proc, ctx, options):
            body = tuple(
                substitute(s, {"N": Var("N") - Const(1)}) for s in proc.body
            )
            return PassOutcome(
                Procedure(proc.name, proc.params, proc.arrays, body), True
            )

        temp_pass("shrink", shrink)
        proc = setter_proc()
        verifier = DifferentialVerifier(proc, {"N": 6})
        with pytest.raises(VerificationError, match="'shrink'") as ei:
            run_passes(
                proc,
                ["scalars", "shrink"],
                cache=AnalysisCache(),
                verifier=verifier,
            )
        partial = ei.value.result
        assert partial.spans[0].status == "noop"
        assert partial.spans[1].verify == {
            "ok": False,
            "error": str(ei.value),
        }

    def test_sound_pipeline_verifies_every_applied_span(self):
        proc = lu_point_ir()
        verifier = DifferentialVerifier(proc, {"N": 9, "KS": 4})
        result = run_passes(
            proc,
            [("block", {"loop": "K", "factor": "KS"})],
            ctx=Assumptions().assume_ge("N", 2),
            cache=AnalysisCache(),
            verifier=verifier,
        )
        assert result.spans[0].verify["ok"] is True
        assert verifier.checks_run == 1
        assert result.trace["verify_enabled"] is True


class TestSnapshots:
    def test_snapshot_holds_fortran_listing(self):
        result = run_passes(
            lu_point_ir(),
            [("block", {"loop": "K", "factor": "KS"})],
            ctx=Assumptions().assume_ge("N", 2),
            cache=AnalysisCache(),
            trace_snapshots=True,
        )
        snap = result.spans[0].snapshot
        assert snap and "DO" in snap
        assert result.trace["spans"][0]["snapshot"] == snap
