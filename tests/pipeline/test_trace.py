"""repro.pipeline.trace: schema round-trip, span ordering, failure spans."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import is_envelope, payload_digest, payload_of
from repro.errors import TransformError
from repro.ir.build import assign, do, ref
from repro.ir.expr import Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.pipeline import passes
from repro.pipeline.cache import AnalysisCache
from repro.pipeline.manager import run_passes
from repro.pipeline.passes import PassInfo
from repro.pipeline.trace import SCHEMA, build_trace, span_to_dict, write_trace


def small_proc() -> Procedure:
    return Procedure(
        "setter",
        ("N",),
        (ArrayDecl("A", (Var("N"),)),),
        (do("I", 1, "N", assign(ref("A", "I"), Var("I") * 2.0)),),
    )


@pytest.fixture
def failing_pass():
    """A registered pass whose run always raises TransformError."""

    def run(proc, ctx, options):
        raise TransformError("synthetic failure")

    passes.register(
        PassInfo("always_fails", "test-only failing pass"),
        lambda p, c, o: None,
        run,
    )
    yield "always_fails"
    passes._REGISTRY.pop("always_fails", None)


class TestRoundTrip:
    def test_write_then_load_is_identical(self, tmp_path):
        result = run_passes(small_proc(), ["scalars"], cache=AnalysisCache())
        path = tmp_path / "trace.json"
        write_trace(str(path), result.trace)
        doc = json.loads(path.read_text())
        assert is_envelope(doc)
        assert doc["digest"] == payload_digest(result.trace)
        loaded = payload_of(doc)
        assert loaded == result.trace
        assert loaded["schema"] == SCHEMA

    def test_span_to_dict_fields(self):
        result = run_passes(small_proc(), ["scalars"], cache=AnalysisCache())
        d = span_to_dict(result.spans[0])
        assert set(d) == {
            "index", "pass", "status", "wall_s", "cached",
            "input_fingerprint", "output_fingerprint",
            "ir_size_before", "ir_size_after",
            "detail", "verify", "error", "snapshot",
        }
        # t_start / artifact are deliberately NOT serialized: the first is
        # an absolute perf_counter (obs export only), the second arbitrary
        assert "t_start" not in d and "artifact" not in d

    def test_build_trace_defaults(self):
        trace = build_trace([])
        assert trace["schema"] == SCHEMA
        assert trace["passes"] == [] and trace["spans"] == []
        assert trace["cache"] == {}
        assert trace["verify_enabled"] is False


class TestSpanOrdering:
    def test_spans_follow_pass_list_order(self):
        result = run_passes(
            small_proc(),
            ["scalars", ("block", {"loop": "ZZ"}), "scalars"],
            cache=AnalysisCache(),
        )
        trace = result.trace
        assert trace["passes"] == ["scalars", "block", "scalars"]
        assert [s["index"] for s in trace["spans"]] == [0, 1, 2]
        assert [s["pass"] for s in trace["spans"]] == trace["passes"]


class TestFailureSpans:
    def test_infeasible_pass_emits_span(self):
        # "block" on a missing loop: precheck rejects, span still recorded
        result = run_passes(
            small_proc(), [("block", {"loop": "ZZ"})], cache=AnalysisCache()
        )
        (span,) = result.trace["spans"]
        assert span["status"] == "infeasible"
        assert span["detail"]["reason"]
        assert span["input_fingerprint"] == span["output_fingerprint"]

    def test_error_pass_emits_span_with_message(self, failing_pass):
        result = run_passes(small_proc(), [failing_pass], cache=AnalysisCache())
        (span,) = result.trace["spans"]
        assert span["status"] == "error"
        assert "synthetic failure" in span["error"]
        json.dumps(result.trace)  # error spans must stay serializable

    def test_stopped_run_still_traces_attempted_spans(self, failing_pass):
        result = run_passes(
            small_proc(),
            [failing_pass, "scalars"],
            on_infeasible="stop",
            cache=AnalysisCache(),
        )
        assert result.stopped
        assert [s["pass"] for s in result.trace["spans"]] == [failing_pass]
