"""AnalysisCache: memo hooks, hit counters, install/uninstall nesting."""

from __future__ import annotations

from repro.algorithms import lu_point_ir
from repro.analysis import dependence as dep_mod
from repro.analysis import feasibility as feas_mod
from repro.analysis import sections as sec_mod
from repro.analysis.dependence import all_dependences
from repro.analysis.feasibility import feasible
from repro.pipeline.cache import AnalysisCache, installed, uninstall
from repro.pipeline.manager import run_passes
from repro.symbolic.affine import Affine
from repro.symbolic.assume import Assumptions


def lu_ctx() -> Assumptions:
    return Assumptions().assume_ge("N", 2)


class TestDependenceRegion:
    def test_same_root_hits_equal_copy_misses(self):
        cache = AnalysisCache()
        p1, p2 = lu_point_ir(), lu_point_ir()
        with installed(cache):
            first = all_dependences(p1.body[0], lu_ctx())
            again = all_dependences(p1.body[0], lu_ctx())
            assert cache.dependence.hits == 1
            assert cache.dependence.misses == 1
            # dependence records hold loop identities: a structurally
            # equal but distinct tree must NOT share the cached value
            all_dependences(p2.body[0], lu_ctx())
            assert cache.dependence.misses == 2
        assert [d.kind for d in first] == [d.kind for d in again]

    def test_cached_list_is_a_fresh_copy(self):
        cache = AnalysisCache()
        p = lu_point_ir()
        with installed(cache):
            first = all_dependences(p.body[0], lu_ctx())
            first.append("sentinel")
            again = all_dependences(p.body[0], lu_ctx())
        assert "sentinel" not in again

    def test_results_identical_with_and_without_cache(self):
        p = lu_point_ir()
        bare = all_dependences(p.body[0], lu_ctx())
        with installed(AnalysisCache()):
            hooked = all_dependences(p.body[0], lu_ctx())
            hooked_again = all_dependences(p.body[0], lu_ctx())
        key = lambda deps: [(d.kind, d.direction) for d in deps]
        assert key(bare) == key(hooked) == key(hooked_again)


class TestFeasibilityRegion:
    def test_equal_constraint_lists_hit(self):
        cache = AnalysisCache()
        cons = [Affine.make({"I": 1}, 0), Affine.make({"I": -1}, 5)]
        with installed(cache):
            a = feasible(list(cons))
            b = feasible(list(cons))
        assert a is b or a == b
        assert cache.feasibility.hits == 1
        assert cache.feasibility.misses == 1


class TestPassRegion:
    SPEC = [("block", {"loop": "K", "factor": "KS"})]

    def test_second_derivation_replays_from_cache(self):
        cache = AnalysisCache()
        r1 = run_passes(lu_point_ir(), self.SPEC, ctx=lu_ctx(), cache=cache)
        assert not r1.spans[0].cached
        r2 = run_passes(lu_point_ir(), self.SPEC, ctx=lu_ctx(), cache=cache)
        assert r2.spans[0].cached
        assert cache.passes.hits == 1
        assert r2.procedure == r1.procedure
        # the replay must leave the context identical to a fresh run
        assert r2.ctx.facts_key() == r1.ctx.facts_key()

    def test_analysis_regions_fill_during_blocking(self):
        cache = AnalysisCache()
        run_passes(lu_point_ir(), self.SPEC, ctx=lu_ctx(), cache=cache)
        stats = cache.stats()
        assert stats["direction"]["hits"] > 0
        assert stats["sections"]["hits"] > 0
        assert cache.total_hits() > 0

    def test_different_context_misses_pass_cache(self):
        cache = AnalysisCache()
        run_passes(lu_point_ir(), self.SPEC, ctx=lu_ctx(), cache=cache)
        run_passes(
            lu_point_ir(),
            self.SPEC,
            ctx=Assumptions().assume_ge("N", 3),
            cache=cache,
        )
        assert cache.passes.hits == 0
        assert cache.passes.misses == 2

    def test_unserializable_option_skips_memoization(self):
        cache = AnalysisCache()
        spec = [("block", {"loop": "K", "factor": "KS", "ignore_dep": lambda p, l, d: False})]
        run_passes(lu_point_ir(), spec, ctx=lu_ctx(), cache=cache)
        run_passes(lu_point_ir(), spec, ctx=lu_ctx(), cache=cache)
        assert cache.passes.hits == 0
        assert cache.passes.misses == 0


class TestInstallation:
    HOOKS = [
        (dep_mod, "_memo_hook"),
        (feas_mod, "_feasible_memo_hook"),
        (feas_mod, "_direction_memo_hook"),
        (sec_mod, "_memo_hook"),
    ]

    def test_hooks_restored_after_context_exit(self):
        for mod, attr in self.HOOKS:
            assert getattr(mod, attr) is None
        with installed(AnalysisCache()):
            for mod, attr in self.HOOKS:
                assert getattr(mod, attr) is not None
        for mod, attr in self.HOOKS:
            assert getattr(mod, attr) is None

    def test_nested_installs_restore_the_outer_cache(self):
        outer, inner = AnalysisCache(), AnalysisCache()
        p = lu_point_ir()
        with installed(outer):
            with installed(inner):
                all_dependences(p.body[0], lu_ctx())
                assert inner.dependence.misses == 1
            all_dependences(p.body[0], lu_ctx())
            assert outer.dependence.misses == 1  # outer saw nothing inner did
        assert dep_mod._memo_hook is None

    def test_unbalanced_uninstall_resets_to_bare_hooks(self):
        # tolerated (reset to None), so a leaked install can't wedge the
        # analysis modules for the rest of the process
        uninstall()
        for mod, attr in self.HOOKS:
            assert getattr(mod, attr) is None

    def test_clear_resets_counters_and_entries(self):
        cache = AnalysisCache()
        with installed(cache):
            all_dependences(lu_point_ir().body[0], lu_ctx())
        assert cache.dependence.misses > 0
        cache.clear()
        for region, stats in cache.stats().items():
            assert stats == {
                "hits": 0,
                "misses": 0,
                "entries": 0,
                "evictions": 0,
                "hit_rate": 0.0,
            }, region


class TestLRUBound:
    def test_region_never_exceeds_cap_and_counts_evictions(self):
        cache = AnalysisCache(region_cap=4)
        for i in range(10):
            cache.feasibility.put(("k", i), i)
        assert len(cache.feasibility) == 4
        assert cache.feasibility.evictions == 6
        assert cache.feasibility.stats()["evictions"] == 6

    def test_eviction_order_is_least_recently_used(self):
        cache = AnalysisCache(region_cap=2)
        region = cache.feasibility
        region.put("a", 1)
        region.put("b", 2)
        assert region.peek("a") == (True, 1)  # refresh "a": "b" is now LRU
        region.put("c", 3)
        assert region.peek("b") == (False, None)
        assert region.peek("a") == (True, 1)
        assert region.peek("c") == (True, 3)

    def test_rewriting_an_existing_key_does_not_evict(self):
        region = AnalysisCache(region_cap=2).feasibility
        region.put("a", 1)
        region.put("b", 2)
        region.put("a", 10)
        assert region.evictions == 0
        assert len(region) == 2

    def test_bounded_dependence_region_still_correct(self):
        # the dependence entry pins its root; eviction under a tiny cap
        # must only cost recomputation, never correctness
        cache = AnalysisCache(region_cap=1)
        p = lu_point_ir()
        with installed(cache):
            first = all_dependences(p.body[0], lu_ctx())
            again = all_dependences(p.body[0], lu_ctx())
        key = lambda deps: [(d.kind, d.direction) for d in deps]
        assert key(first) == key(again)
