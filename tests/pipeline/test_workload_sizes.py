"""Workload size factories: parameterized sizes, byte-identical defaults.

Satellite regression for the matrix subsystem: registry entries accept a
problem size ``n`` and blocking factor ``b``, and at the defaults every
existing caller sees exactly what it saw before — same sizes mapping,
same built IR.
"""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.ir.fingerprint import ir_fingerprint
from repro.pipeline.workloads import available_workloads, get_workload

NAMES = sorted(w.name for w in available_workloads())


class TestDefaultsUnchanged:
    @pytest.mark.parametrize("name", NAMES)
    def test_sizes_for_defaults_to_verify_sizes(self, name):
        w = get_workload(name)
        assert w.sizes_for() == dict(w.verify_sizes)
        assert w.sizes_for(None, None) == dict(w.verify_sizes)

    @pytest.mark.parametrize("name", NAMES)
    def test_factory_at_none_matches_registry(self, name):
        w = get_workload(name)
        if w.size_factory is not None:
            assert w.size_factory(None, None) == dict(w.verify_sizes)

    def test_build_is_independent_of_sizes(self):
        # sizes bind at trace time, never by editing IR
        w = get_workload("lu_nopivot")
        assert ir_fingerprint(w.build()) == ir_fingerprint(w.build())


class TestParameterized:
    def test_lu_binds_n_and_blocking(self):
        w = get_workload("lu_nopivot")
        assert w.sizes_for(24, 8) == {"N": 24, "KS": 8}
        assert w.sizes_for(24) == {"N": 24, "KS": 4}

    def test_conv_scales_all_extents(self):
        sizes = get_workload("conv").sizes_for(16)
        assert sizes["N1"] == 16
        assert 0 < sizes["N3"] <= 16
        assert 0 < sizes["N2"] < 16

    def test_givens_keeps_tall_shape(self):
        sizes = get_workload("givens").sizes_for(12)
        assert sizes == {"M": 12, "N": 10}

    def test_bad_arguments_rejected(self):
        w = get_workload("lu_nopivot")
        with pytest.raises(PipelineError, match="n"):
            w.sizes_for(2)
        with pytest.raises(PipelineError, match="b"):
            w.sizes_for(16, 0)
