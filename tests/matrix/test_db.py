"""MatrixDB: schema, durability semantics, queries."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import MatrixError
from repro.matrix.db import ROW_COLUMNS, MatrixDB


def row(digest: str, **kw) -> dict:
    out = {
        "digest": digest,
        "sweep": "s0",
        "workload": "matmul",
        "recipe": "default",
        "n": None,
        "b": None,
        "cache_kb": 1,
        "line_bytes": 32,
        "assoc": 2,
        "tlb_entries": 16,
        "page_bytes": 256,
        "status": "computed",
        "attempts": 1,
        "from_store": 0,
        "wall_s": 0.1,
        "speedup": 1.5,
        "created_s": 1000.0,
    }
    out.update(kw)
    return out


@pytest.fixture
def db(tmp_path):
    with MatrixDB(str(tmp_path / "matrix.db")) as d:
        yield d


class TestSchema:
    def test_reopen_preserves_rows(self, tmp_path):
        path = str(tmp_path / "m.db")
        with MatrixDB(path) as d:
            d.record_cell(row("d1"))
        with MatrixDB(path) as d:
            assert [r["digest"] for r in d.rows()] == ["d1"]

    def test_schema_version_mismatch_is_an_error(self, tmp_path):
        path = str(tmp_path / "m.db")
        MatrixDB(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value='99' WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(MatrixError, match="schema v99"):
            MatrixDB(path)

    def test_non_database_file_is_an_error(self, tmp_path):
        path = tmp_path / "m.db"
        path.write_text("not a database\n" * 100)
        with pytest.raises(MatrixError, match="not a matrix database"):
            MatrixDB(str(path))


class TestCells:
    def test_record_is_insert_or_replace(self, db):
        db.record_cell(row("d1", status="failed", error="boom", speedup=None))
        db.record_cell(row("d1", status="computed"))
        rows = db.rows()
        assert len(rows) == 1
        assert rows[0]["status"] == "computed"
        assert rows[0]["error"] is None

    def test_unknown_keys_ignored_and_missing_null(self, db):
        db.record_cell(row("d1", bogus="x"))
        r = db.rows()[0]
        assert "bogus" not in r
        assert r["refs"] is None
        assert set(r) == set(ROW_COLUMNS)

    def test_ok_digests_excludes_failures_and_unknowns(self, db):
        db.record_cell(row("d1", status="computed"))
        db.record_cell(row("d2", status="hit"))
        db.record_cell(row("d3", status="failed", error="boom"))
        assert db.ok_digests(["d1", "d2", "d3", "d4"]) == {"d1", "d2"}

    def test_rows_sorted_by_factors_none_last(self, db):
        db.record_cell(row("dx", workload="matmul", n=24))
        db.record_cell(row("dy", workload="conv", n=None))
        db.record_cell(row("dz", workload="conv", n=16))
        assert [r["digest"] for r in db.rows()] == ["dz", "dy", "dx"]
        # digest-filtered queries sort identically
        assert [r["digest"] for r in db.rows(["dx", "dy", "dz"])] == [
            "dz", "dy", "dx"
        ]

    def test_counts(self, db):
        db.record_cell(row("d1", status="computed"))
        db.record_cell(row("d2", status="failed", error="boom"))
        counts = db.counts(["d1", "d2", "d3"])
        assert counts == {
            "total": 3,
            "done": 1,
            "failed": 1,
            "missing": 1,
            "by_status": {"computed": 1, "failed": 1},
        }


class TestSweeps:
    def test_sweep_upsert_keeps_created(self, db):
        db.record_sweep("s1", '{"factors": {}}', 4)
        first = db.sweeps()[0]
        db.record_sweep("s1", '{"factors": {}}', 4)
        again = db.sweeps()[0]
        assert again["created_s"] == first["created_s"]
        assert again["updated_s"] >= first["updated_s"]
        assert db.sweep_spec("s1") == {"factors": {}}
        assert db.sweep_spec("nope") is None
