"""GridSpec: construction, validation, expansion, digests."""

from __future__ import annotations

import pytest

from repro.errors import MatrixError
from repro.matrix.grid import DEFAULTS, GridSpec, cell_label, cell_spec


def small() -> GridSpec:
    return GridSpec.from_factors(
        {"workload": ["matmul"], "b": [2, 4], "cache_kb": [1, 2]}
    )


class TestConstruction:
    def test_expansion_is_cartesian_with_defaults(self):
        spec = small()
        cells = spec.cells()
        assert spec.n_cells() == len(cells) == 4
        assert [(c["b"], c["cache_kb"]) for c in cells] == [
            (2, 1), (2, 2), (4, 1), (4, 2)
        ]
        for cell in cells:
            assert cell["workload"] == "matmul"
            assert cell["recipe"] == DEFAULTS["recipe"]
            assert cell["n"] is None
            assert cell["line_bytes"] == DEFAULTS["line_bytes"]

    def test_from_json_accepts_both_shapes(self):
        bare = GridSpec.from_json({"workload": ["matmul"], "b": [2]})
        wrapped = GridSpec.from_json({"factors": {"workload": ["matmul"], "b": [2]}})
        assert bare == wrapped

    def test_from_cli_parses_and_coerces(self):
        spec = GridSpec.from_cli(["workload=matmul", "b=2,4", "cache_kb=1"])
        assert spec.factor_map() == {
            "workload": ["matmul"], "b": [2, 4], "cache_kb": [1]
        }

    def test_digest_is_order_insensitive_and_level_sensitive(self):
        a = GridSpec.from_factors({"workload": ["matmul"], "b": [2, 4]})
        b = GridSpec.from_factors({"b": [2, 4], "workload": ["matmul"]})
        c = GridSpec.from_factors({"workload": ["matmul"], "b": [2, 8]})
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_varied_excludes_single_level_factors(self):
        assert list(small().varied()) == ["b", "cache_kb"]


class TestValidation:
    def test_unknown_factor_rejected(self):
        with pytest.raises(MatrixError, match="unknown factor"):
            GridSpec.from_factors({"workload": ["matmul"], "block": [2]})

    def test_workload_required(self):
        with pytest.raises(MatrixError, match="workload"):
            GridSpec.from_factors({"b": [2]})

    def test_unknown_workload_rejected(self):
        with pytest.raises(MatrixError, match="nope"):
            GridSpec.from_factors({"workload": ["nope"]})

    def test_empty_and_duplicate_levels_rejected(self):
        with pytest.raises(MatrixError, match="no levels"):
            GridSpec.from_factors({"workload": ["matmul"], "b": []})
        with pytest.raises(MatrixError, match="duplicate"):
            GridSpec.from_factors({"workload": ["matmul"], "b": [2, 2]})

    def test_unknown_pass_in_recipe_rejected(self):
        with pytest.raises(MatrixError, match="recipe"):
            GridSpec.from_factors(
                {"workload": ["matmul"], "recipe": ["not_a_pass"]}
            )

    def test_bad_geometry_combination_rejected(self):
        # 1KB with 48-byte lines: not a power of two — caught eagerly
        with pytest.raises(MatrixError, match="geometry"):
            GridSpec.from_factors(
                {"workload": ["matmul"], "cache_kb": [1], "line_bytes": [48]}
            )

    def test_level_coercion_errors(self):
        with pytest.raises(MatrixError, match="integer"):
            GridSpec.from_factors({"workload": ["matmul"], "b": ["two"]})
        with pytest.raises(MatrixError, match=">= 1"):
            GridSpec.from_factors({"workload": ["matmul"], "n": [0]})

    def test_bad_cli_factor_syntax(self):
        with pytest.raises(MatrixError, match="--factor"):
            GridSpec.from_cli(["workload"])
        with pytest.raises(MatrixError, match="twice"):
            GridSpec.from_cli(["workload=matmul", "workload=conv"])


class TestCellSpec:
    def test_cell_spec_binds_every_factor(self):
        cell = small().cells()[0]
        spec = cell_spec(cell, timeout_s=12.5)
        assert spec.kind == "cell"
        assert spec.workload == "matmul"
        assert spec.timeout_s == 12.5
        assert spec.options["b"] == 2
        assert "workload" not in spec.options
        assert spec.label == cell_label(cell)
