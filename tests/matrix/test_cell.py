"""Cell execution and content-addressing.

The digest tests are the satellite-2 regression: the cache geometry is
part of the store key, so two cells differing only in geometry (or in
``n``/``b``) can never collide onto one cached artifact.
"""

from __future__ import annotations

import pytest

from repro.errors import MatrixError
from repro.matrix.cell import RESULT_FIELDS, normalize_options, resolve_recipe
from repro.matrix.grid import GridSpec, cell_spec
from repro.serve.jobs import execute_job, job_key
from repro.serve.store import ArtifactStore


def digest_of(**cell) -> str:
    cell.setdefault("workload", "matmul")
    full = dict(GridSpec.from_factors({k: [v] for k, v in cell.items()}).cells()[0])
    return ArtifactStore(root="").digest(job_key(cell_spec(full)))


class TestDigest:
    def test_geometry_changes_the_digest(self):
        base = digest_of()
        assert digest_of(cache_kb=8) != base
        assert digest_of(line_bytes=64) != base
        assert digest_of(assoc=4) != base
        assert digest_of(tlb_entries=8) != base
        assert digest_of(page_bytes=512) != base

    def test_sizes_change_the_digest(self):
        base = digest_of()
        assert digest_of(n=8) != base
        assert digest_of(b=2) != base

    def test_recipe_changes_the_digest(self):
        assert digest_of(recipe="point") != digest_of()

    def test_identical_cells_share_a_digest(self):
        assert digest_of(cache_kb=2, b=4) == digest_of(cache_kb=2, b=4)


class TestOptions:
    def test_unknown_option_rejected(self):
        with pytest.raises(MatrixError, match="unknown cell option"):
            normalize_options({"block": 4})

    def test_workload_is_not_an_option(self):
        with pytest.raises(MatrixError, match="unknown cell option"):
            normalize_options({"workload": "matmul"})

    def test_recipe_resolution(self):
        assert resolve_recipe("default") is None
        assert resolve_recipe("point") == []
        assert resolve_recipe("a, b") == ["a", "b"]
        with pytest.raises(MatrixError, match="empty recipe"):
            resolve_recipe(" , ")


class TestRunCell:
    def test_cell_row_is_complete_and_consistent(self):
        spec = cell_spec(
            GridSpec.from_factors(
                {"workload": ["matmul"], "n": [8], "b": [2], "cache_kb": [1]}
            ).cells()[0]
        )
        row = execute_job(spec)
        for field in RESULT_FIELDS:
            assert row[field] is not None, field
        assert row["workload"] == "matmul"
        assert row["sizes"]["N"] == 8
        assert row["refs"] > 0 and row["base_refs"] > 0
        assert 0.0 <= row["miss_ratio"] <= 1.0
        assert row["speedup"] == pytest.approx(
            row["base_modeled_s"] / row["modeled_s"]
        )
        assert row["passes"]  # the default recipe ran real passes

    def test_point_recipe_is_the_baseline(self):
        spec = cell_spec(
            GridSpec.from_factors(
                {"workload": ["matmul"], "recipe": ["point"], "n": [8]}
            ).cells()[0]
        )
        row = execute_job(spec)
        assert row["passes"] == []
        assert row["speedup"] == 1.0
        assert row["refs"] == row["base_refs"]
