"""Sweep resume (satellite of the matrix subsystem): an interrupted
sweep keeps its finished cells; the rerun recomputes nothing it has,
and the final table is identical to an uninterrupted run.

The interrupt is deterministic: ``run_grid``'s ``on_row`` hook raises
after K rows.  Rows are recorded in autocommit mode *before* the hook
fires, which is exactly the durability a SIGKILL would exercise.
"""

from __future__ import annotations

import pytest

from repro.matrix.db import MatrixDB
from repro.matrix.grid import GridSpec
from repro.matrix.runner import cell_digests, run_grid
from repro.serve.store import ArtifactStore

#: deterministic columns a resumed table must reproduce exactly
STABLE = (
    "digest", "sweep", "workload", "recipe", "n", "b", "cache_kb",
    "line_bytes", "assoc", "tlb_entries", "page_bytes", "refs", "misses",
    "writebacks", "tlb_misses", "miss_ratio", "modeled_s", "base_refs",
    "base_misses", "base_miss_ratio", "base_modeled_s", "speedup",
    "fingerprint",
)


def grid() -> GridSpec:
    return GridSpec.from_factors(
        {"workload": ["matmul"], "b": [2, 4], "cache_kb": [1, 2], "n": [8]}
    )


def stable(rows) -> list:
    return [{k: r[k] for k in STABLE} for r in rows]


class Interrupt(Exception):
    pass


def interrupt_after(k: int):
    seen = []

    def on_row(row: dict) -> None:
        seen.append(row)
        if len(seen) >= k:
            raise Interrupt(f"killed after {k} rows")

    return on_row, seen


class TestResume:
    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        spec = grid()
        store = ArtifactStore(str(tmp_path / "store"))

        # control: the same grid, uninterrupted, in its own database
        control = run_grid(
            spec, workers=1, store=ArtifactStore(str(tmp_path / "store2")),
            db=MatrixDB(str(tmp_path / "control.db")),
        )
        assert control["run"]["computed"] == 4

        # interrupted sweep: dies after 2 recorded rows
        on_row, seen = interrupt_after(2)
        db_path = str(tmp_path / "m.db")
        with pytest.raises(Interrupt):
            with MatrixDB(db_path) as db:
                run_grid(spec, workers=1, store=store, db=db, on_row=on_row)
        with MatrixDB(db_path) as db:
            partial = db.rows()
        assert len(partial) == 2
        created = {r["digest"]: r["created_s"] for r in partial}

        # resume in a fresh MatrixDB ("fresh process"): only the missing
        # cells run; the surviving rows keep their original timestamps
        with MatrixDB(db_path) as db:
            doc = run_grid(spec, workers=1, store=store, db=db)
            final = db.rows()
        assert doc["run"]["skipped"] == 2
        assert doc["run"]["computed"] + doc["run"]["hit"] == 2
        for r in final:
            if r["digest"] in created:
                assert r["created_s"] == created[r["digest"]]

        # and the final table matches the uninterrupted control run
        # on every deterministic column except the sweep-db identity
        drop = ("sweep",)
        assert [
            {k: v for k, v in r.items() if k not in drop}
            for r in stable(final)
        ] == [
            {k: v for k, v in r.items() if k not in drop}
            for r in stable(control["rows"])
        ]

    def test_rerun_recomputes_zero_cells(self, tmp_path):
        spec = grid()
        store = ArtifactStore(str(tmp_path / "store"))
        db_path = str(tmp_path / "m.db")
        with MatrixDB(db_path) as db:
            first = run_grid(spec, workers=1, store=store, db=db)
        assert first["run"]["computed"] == 4
        with MatrixDB(db_path) as db:
            second = run_grid(spec, workers=1, store=store, db=db)
        assert second["run"]["skipped"] == 4
        assert second["run"]["computed"] == 0
        assert stable(first["rows"]) == stable(second["rows"])

    def test_fresh_resolve_lands_as_store_hits(self, tmp_path):
        spec = grid()
        store = ArtifactStore(str(tmp_path / "store"))
        with MatrixDB(str(tmp_path / "a.db")) as db:
            run_grid(spec, workers=1, store=store, db=db)
        # new database, warm store: every cell is a hit, nothing executes
        with MatrixDB(str(tmp_path / "b.db")) as db:
            doc = run_grid(spec, workers=1, store=store, db=db)
        assert doc["run"]["hit"] == 4
        assert doc["run"]["computed"] == 0
        assert all(r["attempts"] == 0 for r in doc["rows"])
        assert all(r["from_store"] == 1 for r in doc["rows"])

    def test_no_store_still_sweeps_and_resumes(self, tmp_path):
        spec = grid()
        db_path = str(tmp_path / "m.db")
        with MatrixDB(db_path) as db:
            first = run_grid(spec, workers=1, store=None, db=db)
        assert first["run"]["computed"] == 4
        with MatrixDB(db_path) as db:
            second = run_grid(spec, workers=1, store=None, db=db)
        assert second["run"]["skipped"] == 4

    def test_digests_match_store_addresses(self, tmp_path):
        spec = grid()
        store = ArtifactStore(str(tmp_path / "store"))
        digests = set(cell_digests(spec, store))
        with MatrixDB(str(tmp_path / "m.db")) as db:
            doc = run_grid(spec, workers=1, store=store, db=db)
        assert {r["digest"] for r in doc["rows"]} == digests
