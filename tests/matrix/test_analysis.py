"""Analysis over synthetic rows: quantiles, OAT sensitivity, best-b."""

from __future__ import annotations

import pytest

from repro.errors import MatrixError
from repro.matrix.analysis import (
    best_blocking,
    quantiles,
    sensitivity,
    summarize,
    varied_factors,
)


def row(**kw) -> dict:
    out = {
        "workload": "matmul",
        "recipe": "default",
        "n": 16,
        "b": 2,
        "cache_kb": 1,
        "line_bytes": 32,
        "assoc": 2,
        "tlb_entries": 16,
        "page_bytes": 256,
        "status": "computed",
        "speedup": 1.0,
        "miss_ratio": 0.1,
        "modeled_s": 1.0,
        "tlb_misses": 0,
    }
    out.update(kw)
    return out


#: 2x2 grid: b in {2,4} x cache_kb in {1,2}; b=4 is uniformly +0.5
GRID = [
    row(b=2, cache_kb=1, speedup=1.0),
    row(b=4, cache_kb=1, speedup=1.5),
    row(b=2, cache_kb=2, speedup=1.2),
    row(b=4, cache_kb=2, speedup=1.7),
]


class TestQuantiles:
    def test_empty_is_none(self):
        assert quantiles([]) is None
        assert quantiles([None]) is None

    def test_interpolated_quartiles(self):
        q = quantiles([1.0, 2.0, 3.0, 4.0])
        assert q["count"] == 4
        assert q["min"] == 1.0 and q["max"] == 4.0
        assert q["p50"] == 2.5
        assert q["p25"] == 1.75
        assert q["mean"] == 2.5


class TestSummarize:
    def test_counts_and_distributions(self):
        rows = GRID + [row(status="failed", speedup=None)]
        s = summarize(rows)
        assert (s["cells"], s["ok"], s["failed"]) == (5, 4, 1)
        assert s["speedup"]["max"] == 1.7
        assert s["by_workload"]["matmul"]["cells"] == 4

    def test_varied_factors(self):
        assert set(varied_factors(GRID)) == {"b", "cache_kb"}


class TestSensitivity:
    def test_oat_effects_are_controlled_comparisons(self):
        out = sensitivity(GRID)
        b = out["b"]
        # two groups (one per cache_kb level), each with a 0.5 spread
        assert b["comparisons"] == 2
        assert b["mean_effect"] == pytest.approx(0.5)
        assert b["max_effect"] == pytest.approx(0.5)
        assert b["best_level"] == "4"
        assert b["levels"]["2"] == {"mean": pytest.approx(1.1), "cells": 2}
        assert b["levels"]["4"] == {"mean": pytest.approx(1.6), "cells": 2}
        assert set(out) == {"b", "cache_kb"}

    def test_lower_is_better_for_cost_metrics(self):
        rows = [row(b=2, miss_ratio=0.3), row(b=4, miss_ratio=0.1)]
        out = sensitivity(rows, metric="miss_ratio")
        assert out["b"]["best_level"] == "4"

    def test_failed_rows_are_excluded(self):
        rows = GRID + [row(b=4, cache_kb=1, status="failed", speedup=99.0)]
        assert sensitivity(rows)["b"]["levels"]["4"]["cells"] == 2

    def test_unknown_metric_and_factor_raise(self):
        with pytest.raises(MatrixError, match="unknown metric"):
            sensitivity(GRID, metric="joy")
        with pytest.raises(MatrixError, match="unknown factor"):
            sensitivity(GRID, factors=["joy"])

    def test_constant_factor_raises_with_varied_list(self):
        with pytest.raises(MatrixError, match="does not vary"):
            sensitivity(GRID, factors=["n"])


class TestBestBlocking:
    def test_best_b_per_workload(self):
        rows = GRID + [
            row(workload="conv", b=2, speedup=2.0),
            row(workload="conv", b=4, speedup=1.1),
        ]
        out = best_blocking(rows)
        assert [(e["workload"], e["best_b"]) for e in out] == [
            ("conv", 2), ("matmul", 4)
        ]
        assert out[1]["per_b"]["4"]["mean"] == pytest.approx(1.6)

    def test_rows_without_b_are_omitted(self):
        assert best_blocking([row(b=None)]) == []
