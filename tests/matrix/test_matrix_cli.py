"""``python -m repro.matrix``: exit codes, artifacts, filters."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import is_envelope, payload_of
from repro.matrix.cli import main
from repro.matrix.report import SCHEMA, validate_report

GRID = ["--factor", "workload=matmul", "--factor", "b=2,4",
        "--factor", "cache_kb=1,2", "--factor", "n=8"]


@pytest.fixture
def cachedir(tmp_path, monkeypatch):
    """Point both the store and the database at the test's tmp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


def run_cli(*argv) -> int:
    return main(list(argv))


class TestRun:
    def test_run_writes_valid_artifact(self, cachedir, capsys):
        out = cachedir / "BENCH_matrix.json"
        rc = run_cli("run", *GRID, "--workers", "1", "--out", str(out))
        assert rc == 0
        env = json.loads(out.read_text())
        assert is_envelope(env)
        doc = payload_of(env)
        assert doc["schema"] == SCHEMA
        assert validate_report(doc) == []
        assert doc["run"]["computed"] == 4
        assert {"b", "cache_kb"} <= set(doc["sensitivity"])
        assert "report written" in capsys.readouterr().out

    def test_rerun_skips_everything(self, cachedir, capsys):
        out = cachedir / "r.json"
        assert run_cli("run", *GRID, "--workers", "1", "--out", str(out)) == 0
        assert run_cli("run", *GRID, "--workers", "1", "--out", str(out)) == 0
        doc = payload_of(json.loads(out.read_text()))
        assert doc["run"]["skipped"] == 4
        assert doc["run"]["computed"] == 0

    def test_spec_file_and_progress(self, cachedir, capsys):
        spec = cachedir / "grid.json"
        spec.write_text(json.dumps(
            {"factors": {"workload": ["matmul"], "b": [2, 4], "n": [8]}}
        ))
        rc = run_cli("run", str(spec), "--workers", "1", "--progress",
                     "--out", str(cachedir / "r.json"))
        assert rc == 0
        assert "[2/2]" in capsys.readouterr().out

    def test_bad_spec_exits_2(self, cachedir, capsys):
        rc = run_cli("run", "--factor", "workload=matmul",
                     "--factor", "blocking=2")
        assert rc == 2
        assert "unknown factor" in capsys.readouterr().err

    def test_spec_and_factor_are_exclusive(self, cachedir, capsys):
        spec = cachedir / "grid.json"
        spec.write_text("{}")
        assert run_cli("run", str(spec), *GRID) == 2


class TestStatusResumeReport:
    @pytest.fixture
    def swept(self, cachedir):
        assert run_cli("run", *GRID, "--workers", "1",
                       "--out", str(cachedir / "r.json")) == 0
        return cachedir

    def test_status_lists_the_sweep(self, swept, capsys):
        assert run_cli("status", "--json") == 0
        out = json.loads(capsys.readouterr().out)
        assert len(out) == 1
        assert out[0]["done"] == out[0]["cells"] == 4

    def test_resume_completed_sweep_is_a_noop(self, swept, capsys):
        out = swept / "resumed.json"
        assert run_cli("resume", "--out", str(out)) == 0
        doc = payload_of(json.loads(out.read_text()))
        assert doc["run"]["skipped"] == 4

    def test_resume_unknown_sweep_exits_2(self, swept, capsys):
        assert run_cli("resume", "ffff") == 2
        assert "no sweep matches" in capsys.readouterr().err

    def test_report_only_factor(self, swept, capsys):
        out = swept / "rep.json"
        assert run_cli("report", "--only", "b", "--out", str(out)) == 0
        doc = payload_of(json.loads(out.read_text()))
        assert validate_report(doc) == []
        assert list(doc["sensitivity"]) == ["b"]

    def test_report_only_absent_factor_exits_2(self, swept, capsys):
        assert run_cli("report", "--only", "n") == 2
        err = capsys.readouterr().err
        assert "does not vary" in err and "varied factors" in err

    def test_report_only_unknown_factor_exits_2(self, swept, capsys):
        assert run_cli("report", "--only", "bogus") == 2
        assert "unknown factor" in capsys.readouterr().err

    def test_report_metric_switch(self, swept, capsys):
        assert run_cli("report", "--only", "b", "--metric", "miss_ratio") == 0
        assert "metric: miss_ratio" in capsys.readouterr().out

    def test_report_empty_database_exits_2(self, cachedir, capsys):
        assert run_cli("report") == 2
        assert "no result rows" in capsys.readouterr().err
