"""Algorithm IR builders against independent numpy oracles.

Every kernel the benchmarks measure is validated here: the IR transcription
must compute exactly what the mathematics says, on both execution engines.
"""

import numpy as np
import pytest

from repro.algorithms import (
    aconv_ir,
    aconv_ref,
    conv_ir,
    conv_ref,
    givens_optimized_ir,
    givens_point_ir,
    givens_ref,
    householder_block_ref,
    householder_point_ir,
    householder_ref,
    lu_block_fig6_ir,
    lu_pivot_block_fig8_ir,
    lu_pivot_point_ir,
    lu_pivot_ref,
    lu_point_ir,
    lu_ref,
    lu_sorensen_ir,
    matmul_guarded_ir,
    matmul_ref,
    sparse_b,
)
from repro.runtime import compile_procedure, execute


def rng():
    return np.random.default_rng(42)


def diag_dominant(n):
    a = rng().uniform(0.5, 1.5, (n, n))
    return a + np.eye(n) * n


class TestLU:
    def test_point_vs_oracle_both_engines(self):
        a0 = diag_dominant(9)
        want = lu_ref(a0)
        got_c = compile_procedure(lu_point_ir())({"N": 9}, arrays={"A": a0})["A"]
        got_i = execute(lu_point_ir(), {"N": 9}, arrays={"A": a0})["A"]
        assert np.allclose(got_c, want)
        assert np.array_equal(got_c, got_i)

    @pytest.mark.parametrize("ks", [2, 3, 4, 9, 16])
    def test_fig6_block_is_bitwise_point(self, ks):
        a0 = diag_dominant(11)
        point = compile_procedure(lu_point_ir())({"N": 11}, arrays={"A": a0})["A"]
        block = compile_procedure(lu_block_fig6_ir())({"N": 11, "KS": ks}, arrays={"A": a0})["A"]
        assert np.array_equal(point, block)

    @pytest.mark.parametrize("ks", [3, 4])
    def test_sorensen_variant(self, ks):
        a0 = diag_dominant(10)
        point = compile_procedure(lu_point_ir())({"N": 10}, arrays={"A": a0})["A"]
        got = compile_procedure(lu_sorensen_ir())({"N": 10, "KS": ks}, arrays={"A": a0})["A"]
        assert np.allclose(got, point)

    def test_pivot_point_vs_oracle(self):
        a0 = rng().uniform(-1, 1, (10, 10))
        got = compile_procedure(lu_pivot_point_ir())({"N": 10}, arrays={"A": a0})["A"]
        assert np.allclose(got, lu_pivot_ref(a0))

    @pytest.mark.parametrize("ks", [2, 3, 4, 10])
    def test_fig8_block_matches_point(self, ks):
        a0 = rng().uniform(-1, 1, (11, 11))
        point = compile_procedure(lu_pivot_point_ir())({"N": 11}, arrays={"A": a0})["A"]
        block = compile_procedure(lu_pivot_block_fig8_ir())(
            {"N": 11, "KS": ks}, arrays={"A": a0}
        )["A"]
        # commuting row swaps with column updates reorders nothing per
        # element: the result is bitwise identical
        assert np.array_equal(point, block)

    def test_lu_reconstructs_matrix(self):
        a0 = diag_dominant(8)
        f = lu_ref(a0)
        l = np.tril(f, -1) + np.eye(8)
        u = np.triu(f)
        assert np.allclose(l @ u, a0)


class TestGivens:
    def test_point_vs_oracle(self):
        a0 = rng().uniform(-1, 1, (8, 6))
        got = compile_procedure(givens_point_ir())({"M": 8, "N": 6}, arrays={"A": a0})["A"]
        assert np.allclose(got, givens_ref(a0))

    def test_r_is_upper_triangular(self):
        a0 = rng().uniform(-1, 1, (7, 7))
        r = givens_ref(a0)
        assert np.allclose(np.tril(r, -1), 0.0, atol=1e-12)

    def test_optimized_transcription_bitwise(self):
        a0 = rng().uniform(-1, 1, (9, 5))
        a0[rng().uniform(size=(9, 5)) < 0.3] = 0.0
        p = compile_procedure(givens_point_ir())({"M": 9, "N": 5}, arrays={"A": a0})["A"]
        o = compile_procedure(givens_optimized_ir())({"M": 9, "N": 5}, arrays={"A": a0})["A"]
        assert np.array_equal(p, o)

    def test_preserves_norms(self):
        # rotations are orthogonal: column norms of R match those of A
        a0 = rng().uniform(-1, 1, (6, 4))
        r = givens_ref(a0)
        for j in range(4):
            assert np.linalg.norm(r[:, j]) == pytest.approx(np.linalg.norm(a0[:, j]))


class TestHouseholder:
    def test_point_vs_oracle(self):
        a0 = rng().uniform(-1, 1, (8, 5))
        got = compile_procedure(householder_point_ir())({"M": 8, "N": 5}, arrays={"A": a0})["A"]
        assert np.allclose(got, householder_ref(a0))

    def test_matches_numpy_qr_up_to_sign(self):
        a0 = rng().uniform(-1, 1, (7, 4))
        r_ours = np.triu(householder_ref(a0))[:4]
        r_np = np.linalg.qr(a0, mode="r")
        assert np.allclose(np.abs(r_ours), np.abs(r_np), atol=1e-10)

    @pytest.mark.parametrize("block", [1, 2, 3, 5])
    def test_block_wy_same_r(self, block):
        a0 = rng().uniform(-1, 1, (9, 6))
        point = householder_ref(a0)
        blocked, stats = householder_block_ref(a0, block)
        assert np.allclose(np.triu(blocked[:6]), np.triu(point[:6]), atol=1e-8)
        if block > 1:
            # the paper's point: the block form does auxiliary work (T, W)
            assert stats["aux_writes"] > 0


class TestMatmulAndConv:
    def test_guarded_matmul(self):
        n = 12
        a = rng().uniform(0, 1, (n, n)).astype(np.float32)
        b = sparse_b(n, 0.2).astype(np.float32)
        c = np.zeros((n, n), dtype=np.float32)
        got = compile_procedure(matmul_guarded_ir())({"N": n}, arrays={"A": a, "B": b, "C": c})["C"]
        want = matmul_ref(a.astype(float), b.astype(float), c.astype(float))
        assert np.allclose(got, want, rtol=1e-5)

    def test_sparse_b_frequency(self):
        b = sparse_b(64, 0.1, run_len=6)
        freq = np.count_nonzero(b) / b.size
        assert 0.08 <= freq <= 0.12

    @pytest.mark.parametrize("builder,oracle", [(aconv_ir, aconv_ref), (conv_ir, conv_ref)])
    def test_convolutions(self, builder, oracle):
        g = rng()
        f1, f2, f3 = g.uniform(0, 1, 20), g.uniform(0, 1, 6), g.uniform(0, 1, 25)
        got = compile_procedure(builder())(
            {"N1": 20, "N2": 5, "N3": 25, "DT": 0.5},
            arrays={"F1": f1, "F2": f2, "F3": f3},
        )["F3"]
        assert np.allclose(got, oracle(f1, f2, f3, 0.5))

    def test_conv_degenerate_sizes(self):
        g = rng()
        f1, f2, f3 = g.uniform(0, 1, 3), g.uniform(0, 1, 2), g.uniform(0, 1, 5)
        got = compile_procedure(conv_ir())(
            {"N1": 3, "N2": 1, "N3": 5, "DT": 1.0},
            arrays={"F1": f1, "F2": f2, "F3": f3},
        )["F3"]
        assert np.allclose(got, conv_ref(f1, f2, f3, 1.0))
