"""Daemon lifecycle: admission, shedding, drain, restart, fault isolation."""

from __future__ import annotations

import json
import threading

import pytest

from repro.artifacts import payload_of, validate_document
from repro.artifacts.registry import DAEMON_STATUS
from repro.daemon import Daemon, DaemonConfig
from repro.daemon import state as dstate
from repro.daemon.status import flatten_status, validate_status
from repro.errors import DaemonError


@pytest.fixture
def store_dir(tmp_path) -> str:
    return str(tmp_path / "cache")


def make_daemon(store_dir, **overrides) -> Daemon:
    defaults = dict(workers=1, queue_limit=4, deadline_s=30.0,
                    store_dir=store_dir, backoff_s=0.01)
    defaults.update(overrides)
    return Daemon(DaemonConfig(**defaults)).start()


def submit(d: Daemon, job: dict, **extra) -> dstate.DaemonReply:
    return dstate.request(
        "127.0.0.1", d.port, "POST", "/v1/jobs",
        {"job": job, **extra}, timeout_s=60.0,
    )


def probe(seconds=0.0, nonce=None, **opts) -> dict:
    options = {"action": "ok", "seconds": seconds, **opts}
    if nonce is not None:
        options["nonce"] = nonce
    return {"kind": "probe", "workload": "t", "options": options}


@pytest.fixture
def daemon(store_dir):
    d = make_daemon(store_dir)
    yield d
    d.request_drain()
    assert d.wait_stopped(30.0)


class TestRequests:
    def test_cold_then_memory_then_store_hit(self, daemon):
        job = probe(value=7)
        cold = submit(daemon, job)
        assert cold.ok and cold.body["status"] == "computed"
        assert cold.body["attempts"] == 1
        warm = submit(daemon, job)
        assert warm.ok and warm.body["status"] == "hit"
        assert warm.body["source"] == "memory"
        assert warm.body["attempts"] == 0
        assert warm.body["digest"] == cold.body["digest"]

    def test_bad_request_diagnostic(self, daemon):
        reply = submit(daemon, {"kind": "nope"})
        assert reply.status == 400
        assert reply.rule == "daemon/bad-request"

    def test_unknown_endpoint(self, daemon):
        reply = dstate.request("127.0.0.1", daemon.port, "GET", "/v1/nope")
        assert reply.status == 404
        assert reply.rule == "daemon/not-found"

    def test_failed_job_resolves_not_hangs(self, daemon):
        job = {"kind": "probe", "workload": "t", "max_retries": 0,
               "use_store": False, "options": {"action": "terminal"}}
        reply = submit(daemon, job)
        assert reply.ok  # HTTP 200: the *request* resolved
        assert reply.body["status"] == "failed"
        assert reply.body["error"]

    def test_killed_worker_surfaces_as_failed(self, daemon):
        job = {"kind": "probe", "workload": "t", "max_retries": 0,
               "use_store": False, "options": {"action": "kill"}}
        reply = submit(daemon, job)
        assert reply.ok
        assert reply.body["status"] == "failed"
        assert "died" in reply.body["error"]
        # and the daemon still answers afterwards (worker respawned)
        again = submit(daemon, probe(value=1))
        assert again.ok and again.body["status"] in ("hit", "computed")

    def test_request_deadline_times_out(self, daemon):
        job = probe(seconds=5.0, nonce=1)
        job["use_store"] = False
        reply = submit(daemon, job, deadline_s=0.3)
        assert reply.status == 504
        assert reply.rule == "daemon/deadline"


class TestSaturation:
    def test_shedding_never_deadlocks(self, store_dir):
        d = make_daemon(store_dir, queue_limit=2)
        try:
            replies = []
            lock = threading.Lock()

            def fire(i):
                r = submit(d, probe(seconds=0.4, nonce=i))
                with lock:
                    replies.append(r)

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            assert len(replies) == 8  # every request got an answer
            shed = [r for r in replies if r.status == 429]
            served = [r for r in replies if r.ok]
            assert shed, "burst over a queue_limit=2 window must shed"
            assert all(r.rule == "daemon/saturated" for r in shed)
            assert served, "the window's worth of jobs must still resolve"
            # shed responses carry the window occupancy for client backoff
            assert all(r.body["error"]["limit"] == 2 for r in shed)
        finally:
            d.request_drain()
            assert d.wait_stopped(30.0)


class TestDrainAndRestart:
    def test_drain_completes_in_flight_jobs(self, store_dir):
        d = make_daemon(store_dir)
        reply_box = {}

        def fire():
            reply_box["r"] = submit(d, probe(seconds=0.5, nonce="drain"))

        t = threading.Thread(target=fire)
        t.start()
        import time
        time.sleep(0.15)  # let the job reach the worker
        d.request_drain()
        t.join(30.0)
        assert d.wait_stopped(30.0)
        r = reply_box["r"]
        assert r.ok and r.body["status"] == "computed"
        # new requests during/after the drain are refused, not queued
        with pytest.raises(DaemonError):
            submit(d, probe())

    def test_drain_rejects_new_requests(self, store_dir):
        d = make_daemon(store_dir)
        d._draining.set()  # flag only: server still up, scheduler alive
        reply = submit(d, probe())
        assert reply.status == 503
        assert reply.rule == "daemon/draining"
        d.request_drain()
        assert d.wait_stopped(30.0)

    def test_restart_reuses_warm_store_with_zero_attempts(self, store_dir):
        job = probe(value=42)
        d1 = make_daemon(store_dir)
        cold = submit(d1, job)
        assert cold.body["status"] == "computed"
        d1.request_drain()
        assert d1.wait_stopped(30.0)

        d2 = make_daemon(store_dir)
        try:
            warm = submit(d2, job)
            assert warm.ok and warm.body["status"] == "hit"
            assert warm.body["source"] == "store"  # disk, not memory
            assert warm.body["attempts"] == 0
            assert warm.body["digest"] == cold.body["digest"]
        finally:
            d2.request_drain()
            assert d2.wait_stopped(30.0)

    def test_state_file_lifecycle(self, store_dir):
        d = make_daemon(store_dir)
        doc = dstate.read_state(d.store.root)
        assert doc is not None and doc["port"] == d.port
        d.request_drain()
        assert d.wait_stopped(30.0)
        assert dstate.read_state(d.store.root) is None

    def test_stale_state_file_is_cleaned(self, store_dir, tmp_path):
        root = tmp_path / "cache2"
        dstate.write_state(root, {"pid": 2 ** 22 + 12345,
                                  "host": "127.0.0.1", "port": 1})
        assert dstate.read_state(root) is None
        assert not dstate.state_path(root).exists()


class TestStatus:
    def test_status_envelope_validates(self, daemon):
        submit(daemon, probe(value=1))
        submit(daemon, probe(value=1))
        reply = dstate.request("127.0.0.1", daemon.port, "GET", "/v1/status")
        assert reply.ok
        assert validate_document(reply.body) == []
        payload = payload_of(reply.body)
        assert payload["schema"] == DAEMON_STATUS
        assert validate_status(payload) == []
        assert payload["state"] == "running"
        assert payload["requests"]["received"] == 2
        assert payload["requests"]["memory_hits"] == 1
        assert payload["requests"]["completed"]["computed"] == 1

    def test_status_flattens_to_daemon_metrics(self, daemon):
        submit(daemon, probe(value=9))
        payload = daemon.status_payload()
        metrics = flatten_status(payload)
        assert metrics["daemon:requests.received"] == 1.0
        assert metrics["daemon:completed.computed"] == 1.0
        assert "daemon:latency.request_s.p50" in metrics

    def test_validator_rejects_junk(self):
        assert validate_status([]) == ["document is not an object"]
        problems = validate_status({"state": "confused"})
        assert any("unknown state" in p for p in problems)

    def test_final_status_written_on_drain(self, store_dir):
        d = make_daemon(store_dir)
        submit(d, probe(value=3))
        d.request_drain()
        assert d.wait_stopped(30.0)
        path = d.store.root / "daemon_final_status.json"
        env = json.loads(path.read_text())
        assert validate_document(env) == []
        assert payload_of(env)["state"] == "draining"
