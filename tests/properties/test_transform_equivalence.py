"""Property: every transformation preserves program semantics.

Random shapes and parameters drive the paper's transformations over a
family of kernels; the transformed procedure must produce bit-identical
arrays (tolerance only where commutativity reorders floating point).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import lu_point_ir
from repro.ir.build import assign, do, ref
from repro.ir.expr import Min, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import loop_by_var
from repro.runtime.validate import assert_equivalent
from repro.symbolic.assume import Assumptions
from repro.transform.blocking import block_loop
from repro.transform.index_set_split import split_index_set
from repro.transform.stripmine import strip_mine
from repro.transform.unroll_jam import triangular_unroll_jam, unroll_and_jam

sizes = st.integers(min_value=1, max_value=14)
factors = st.integers(min_value=2, max_value=6)


@settings(max_examples=40, deadline=None)
@given(n=sizes, m=sizes, js=factors)
def test_strip_mine_any_factor(n, m, js):
    p = Procedure(
        "v", ("N", "M"),
        (ArrayDecl("A", (Var("M"),)), ArrayDecl("B", (Var("N"),))),
        (do("J", 1, "N", do("I", 1, "M", assign(ref("A", "I"), ref("A", "I") + ref("B", "J")))),),
    )
    out, _ = strip_mine(p, loop_by_var(p.body, "J"), js)
    assert_equivalent(p, out, {"N": n, "M": m})


@settings(max_examples=40, deadline=None)
@given(n=sizes, point=st.integers(min_value=-3, max_value=20))
def test_index_set_split_any_point(n, point):
    l = do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") * 2.0 + 1.0))
    p = Procedure("s", ("N",), (ArrayDecl("A", (Var("N"),)),), (l,))
    out, _ = split_index_set(p, l, point)
    assert_equivalent(p, out, {"N": n})


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=13), ks=factors)
def test_block_lu_equivalence(n, ks):
    p = lu_point_ir()
    out, report = block_loop(p, "K", "KS", ctx=Assumptions().assume_ge("N", 2))
    assert_equivalent(p, out, {"N": n, "KS": ks})


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=16), u=factors)
def test_unroll_and_jam_any_factor(n, u):
    nest = do(
        "J", 1, "N",
        do("I", 1, "N", assign(ref("A", "I", "J"), ref("A", "I", "J") + ref("B", "I"))),
    )
    p = Procedure(
        "m", ("N",),
        (ArrayDecl("A", (Var("N"), Var("N"))), ArrayDecl("B", (Var("N"),))),
        (nest,),
    )
    out = unroll_and_jam(p, loop_by_var(p.body, "J"), u)
    assert_equivalent(p, out, {"N": n})


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=16), u=st.integers(min_value=2, max_value=4))
def test_triangular_uj_lower(n, u):
    nest = do(
        "I", 1, "N",
        do("J", "I", "N", assign(ref("A", "J", "I"), ref("A", "J", "I") + 1.0)),
    )
    p = Procedure("m", ("N",), (ArrayDecl("A", (Var("N"), Var("N"))),), (nest,))
    out = triangular_unroll_jam(p, loop_by_var(p.body, "I"), u)
    assert_equivalent(p, out, {"N": n})


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    is_=st.integers(min_value=2, max_value=8),
)
def test_sec33_blocking_pipeline(n, is_):
    s1 = assign(ref("T", "I"), ref("A", "I"))
    s2 = do("K", "I", "N", assign(ref("A", "K"), ref("A", "K") + ref("T", "I")))
    p = Procedure(
        "p", ("N",),
        (ArrayDecl("A", (Var("N"),)), ArrayDecl("T", (Var("N"),))),
        (do("I", 1, "N", s1, s2),),
    )
    out, _ = block_loop(p, "I", "IS")
    assert_equivalent(p, out, {"N": n, "IS": is_})
