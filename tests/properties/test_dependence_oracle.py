"""Property: the dependence tester is SOUND against a brute-force oracle.

Random two-deep affine loop nests are executed abstractly: every (array,
element, is_write, time) event is enumerated, ground-truth dependence pairs
derived, and each must be covered by some analytic dependence between the
same two references.  (The analytic answer may contain extra dependences —
it is conservative — but may never miss one.)
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.dependence import dependences_between
from repro.analysis.refs import collect_accesses
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.stmt import ArrayDecl, Procedure

subscript = st.tuples(
    st.integers(min_value=-2, max_value=2),  # coefficient of I
    st.integers(min_value=-2, max_value=2),  # coefficient of J
    st.integers(min_value=-3, max_value=9),  # offset
)


def build_expr(c_i, c_j, off):
    return Const(c_i) * Var("I") + Const(c_j) * Var("J") + Const(off)


@st.composite
def nests(draw):
    """DO I / DO J / A(w) = A(r1) + A(r2), with random affine subscripts."""
    w = draw(subscript)
    r1 = draw(subscript)
    r2 = draw(subscript)
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=5))
    body = assign(
        ref("A", build_expr(*w)),
        ref("A", build_expr(*r1)) + ref("A", build_expr(*r2)),
    )
    nest = do("I", 1, n, do("J", 1, m, body))
    return nest, (n, m), (w, r1, r2)


def label(kind, sub):
    """Canonical reference label: reads with identical subscript
    expressions are indistinguishable to the analysis, so the oracle must
    not distinguish them either."""
    return (kind, sub)


def enumerate_events(bounds, subs):
    """(ref_label, element, is_write, time) for every iteration, in
    evaluation order: the two reads, then the write."""
    n, m = bounds
    w, r1, r2 = subs
    events = []
    t = 0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            for kind, sub in (("r", r1), ("r", r2), ("w", w)):
                events.append((label(kind, sub), ci_eval(sub, i, j), kind == "w", t))
                t += 1
    return events


def ci_eval(sub, i, j):
    ci, cj, off = sub
    return ci * i + cj * j + off


def ground_truth_pairs(events):
    """Set of (source_pos, sink_pos) with at least one write touching the
    same element at different times (source first)."""
    pairs = set()
    for k1, (p1, e1, w1, t1) in enumerate(events):
        for p2, e2, w2, t2 in events[k1 + 1 :]:
            if e1 == e2 and (w1 or w2):
                pairs.add((p1, p2))
    return pairs


@settings(max_examples=120, deadline=None)
@given(nests())
def test_analysis_covers_every_real_dependence(case):
    nest, bounds, subs = case
    events = enumerate_events(bounds, subs)
    truth = ground_truth_pairs(events)

    accs = collect_accesses((nest,))
    # map accesses to oracle labels by matching subscript expressions
    w, r1, r2 = subs
    by_expr = {build_expr(*r1): label("r", r1), build_expr(*r2): label("r", r2)}

    def pos_of(acc):
        if acc.is_write:
            return label("w", w)
        return by_expr[acc.ref.index[0]]

    found = set()
    for i in range(len(accs)):
        for j in range(i, len(accs)):
            for d in dependences_between(accs[i], accs[j]):
                found.add((pos_of(d.source), pos_of(d.sink)))
                # conservative vectors cover both orders
                if any(x == "*" for x in d.direction):
                    found.add((pos_of(d.sink), pos_of(d.source)))

    missing = set()
    for s, k in truth:
        if s == k and (s, k) not in found:
            # self pairs: same textual ref touching one element twice
            missing.add((s, k))
        elif s != k and (s, k) not in found and (k, s) not in found:
            # cross pairs must be covered in at least one orientation —
            # orientation of equal-time textual ordering is checked below
            missing.add((s, k))
    assert not missing, f"analysis missed real dependences: {missing}"


@settings(max_examples=60, deadline=None)
@given(nests())
def test_reported_loop_independent_deps_are_textually_ordered(case):
    nest, bounds, subs = case
    accs = collect_accesses((nest,))
    for i in range(len(accs)):
        for j in range(i, len(accs)):
            for d in dependences_between(accs[i], accs[j]):
                if d.loop_independent and d.source is not d.sink:
                    assert d.source.position <= d.sink.position
