"""Properties of the cache simulator and the section algebra."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.ir.expr import Const
from repro.analysis.sections import (
    Section,
    Triplet,
    section_contains,
    section_disjoint,
    section_intersect,
    section_union_hull,
)
from repro.machine.cache import Cache, CacheConfig
from repro.symbolic.assume import Assumptions

addresses = st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=300)


class TestCacheProperties:
    @settings(max_examples=60, deadline=None)
    @given(trace=addresses)
    def test_lru_inclusion_fully_associative(self, trace):
        """A bigger fully-associative LRU cache never misses more."""
        small = Cache(CacheConfig(256, 32, 0))
        big = Cache(CacheConfig(1024, 32, 0))
        for a in trace:
            small.access(a)
            big.access(a)
        assert big.stats.misses <= small.stats.misses

    @settings(max_examples=60, deadline=None)
    @given(trace=addresses)
    def test_miss_count_bounds(self, trace):
        c = Cache(CacheConfig(512, 32, 2))
        for a in trace:
            c.access(a)
        distinct_lines = len({a // 32 for a in trace})
        assert distinct_lines <= c.stats.misses <= len(trace)
        assert c.stats.accesses == len(trace)

    @settings(max_examples=60, deadline=None)
    @given(trace=addresses)
    def test_residency_never_exceeds_capacity(self, trace):
        c = Cache(CacheConfig(256, 32, 2))
        for a in trace:
            c.access(a, is_write=bool(a % 2))
            assert c.resident_lines <= c.config.n_lines

    @settings(max_examples=60, deadline=None)
    @given(trace=addresses)
    def test_writebacks_bounded_by_dirtying_writes(self, trace):
        c = Cache(CacheConfig(128, 32, 1))
        writes = 0
        for a in trace:
            is_w = bool(a % 3 == 0)
            writes += is_w
            c.access(a, is_write=is_w)
        assert c.stats.writebacks <= writes

    @settings(max_examples=40, deadline=None)
    @given(trace=addresses)
    def test_replay_determinism(self, trace):
        c1 = Cache(CacheConfig(256, 32, 4))
        c2 = Cache(CacheConfig(256, 32, 4))
        for a in trace:
            c1.access(a)
            c2.access(a)
        assert c1.stats.misses == c2.stats.misses


bounds = st.integers(min_value=0, max_value=30)


def concrete_sections(lo1, hi1, lo2, hi2):
    a = Section("A", (Triplet(Const(lo1), Const(hi1)),))
    b = Section("A", (Triplet(Const(lo2), Const(hi2)),))
    sa = set(range(lo1, hi1 + 1))
    sb = set(range(lo2, hi2 + 1))
    return a, b, sa, sb


class TestSectionAlgebra:
    @settings(max_examples=150, deadline=None)
    @given(lo1=bounds, hi1=bounds, lo2=bounds, hi2=bounds)
    def test_against_concrete_sets(self, lo1, hi1, lo2, hi2):
        ctx = Assumptions()
        a, b, sa, sb = concrete_sections(lo1, hi1, lo2, hi2)
        # three-valued answers must agree with set semantics when decided
        d = section_disjoint(a, b, ctx)
        if d is not None and sa and sb:
            assert d == (not (sa & sb))
        c = section_contains(a, b, ctx)
        if c is True and sb:
            assert sb <= sa
        inter = section_intersect(a, b, ctx)
        union = section_union_hull(a, b, ctx)
        ilo, ihi = inter.dims[0].lo.value, inter.dims[0].hi.value
        ulo, uhi = union.dims[0].lo.value, union.dims[0].hi.value
        if sa & sb:
            assert set(range(ilo, ihi + 1)) == (sa & sb)
        if sa and sb:
            assert set(range(ulo, uhi + 1)) >= (sa | sb)
            assert ulo == min(lo1, lo2) and uhi == max(hi1, hi2)
