"""Property: pretty-print then re-parse is the identity on procedures,
including the Sec. 6 ``BLOCK DO`` / ``IN ... DO`` / ``LAST()`` surface."""

from hypothesis import given, settings, strategies as st

from repro.frontend import parse_procedure
from repro.ir.build import assign, block_do, do, if_, in_do, ref
from repro.ir.expr import Call, Compare, Const, Min, Max, Var, as_expr
from repro.ir.pretty import to_fortran
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import strip_labels
from repro.symbolic.simplify import simplify_procedure

names = st.sampled_from(["I", "J", "K", "L"])
consts = st.integers(min_value=0, max_value=9)


@st.composite
def exprs(draw, depth=2, idx_vars=("I",)):
    if depth == 0:
        leaves = [consts.map(Const), st.just(Var("N"))]
        if idx_vars:
            leaves.append(st.sampled_from([Var(v) for v in idx_vars]))
        return draw(st.one_of(*leaves))
    kind = draw(st.sampled_from(["add", "sub", "mul_c", "min", "max", "leaf"]))
    if kind == "leaf":
        return draw(exprs(depth=0, idx_vars=idx_vars))
    a = draw(exprs(depth=depth - 1, idx_vars=idx_vars))
    b = draw(exprs(depth=depth - 1, idx_vars=idx_vars))
    if kind == "add":
        return a + b
    if kind == "sub":
        return a - b
    if kind == "mul_c":
        return Const(draw(st.integers(min_value=2, max_value=4))) * a
    if kind == "min":
        return Min((a, b)) if a != b else a
    return Max((a, b)) if a != b else a


@st.composite
def procedures(draw):
    n_loops = draw(st.integers(min_value=1, max_value=3))
    idx = ["I", "J", "K"][:n_loops]
    body = assign(
        ref("A", draw(exprs(idx_vars=tuple(idx)))),
        ref("A", draw(exprs(idx_vars=tuple(idx)))) + Const(1.0),
    )
    stmt = body
    if draw(st.booleans()):
        stmt = if_(
            Compare("ne", ref("A", Var(idx[-1])), Const(0.0)),
            [body],
        )
    for v in reversed(idx):
        lo = draw(exprs(depth=1, idx_vars=tuple(x for x in idx if x != v)))
        stmt = do(v, lo, "N", stmt)
    return Procedure("RT", ("N",), (ArrayDecl("A", (Var("N") * 8 + 64,)),), (stmt,))


@settings(max_examples=80, deadline=None)
@given(procedures())
def test_roundtrip(proc):
    text = to_fortran(proc)
    back = parse_procedure(text)
    assert simplify_procedure(strip_labels(back)).body == simplify_procedure(proc).body
    assert back.params == proc.params
    assert back.arrays == proc.arrays


def LAST(v):
    return Call("LAST", (Var(v),))


@st.composite
def block_procedures(draw):
    """Sec. 6 nests: BLOCK DO hosting IN ... DO (bounded or whole-block)
    and ordinary DO loops whose bounds use LAST()."""
    update = assign(
        ref("A", draw(exprs(depth=1, idx_vars=("KK",)))),
        ref("A", Var("KK")) + Const(1.0),
    )
    if draw(st.booleans()):
        inner = in_do("K", "KK", update)  # bounds default to the block
    else:
        inner = in_do("K", "KK", update, lo=Var("K"), hi=LAST("K"))
    stmts = [inner]
    if draw(st.booleans()):
        stmts.append(
            do("J", Var("K"), LAST("K"),
               assign(ref("A", Var("J")), Const(0.0)))
        )
    blk = block_do("K", draw(exprs(depth=1, idx_vars=())), "N",
                   *draw(st.permutations(stmts)))
    return Procedure(
        "RTB", ("N",), (ArrayDecl("A", (Var("N") * 8 + 64,)),), (blk,)
    )


@settings(max_examples=60, deadline=None)
@given(block_procedures())
def test_block_roundtrip(proc):
    text = to_fortran(proc)
    assert "BLOCK DO" in text and "IN K DO" in text
    back = parse_procedure(text)
    assert simplify_procedure(strip_labels(back)).body == simplify_procedure(proc).body
    assert back.params == proc.params
    assert back.arrays == proc.arrays


@st.composite
def parallel_procedures(draw):
    """Nests where any level may carry a PARALLEL [REDUCTION] DO marker."""
    from repro.ir.stmt import ParallelLoop

    n_loops = draw(st.integers(min_value=1, max_value=3))
    idx = ["I", "J", "K"][:n_loops]
    stmt = assign(
        ref("A", draw(exprs(idx_vars=tuple(idx)))),
        ref("A", draw(exprs(idx_vars=tuple(idx)))) + Const(1.0),
    )
    kinds = draw(
        st.lists(st.sampled_from([None, "parallel", "reduction"]),
                 min_size=n_loops, max_size=n_loops)
    )
    for v, kind in zip(reversed(idx), reversed(kinds)):
        lo = draw(exprs(depth=1, idx_vars=tuple(x for x in idx if x != v)))
        if kind is None:
            stmt = do(v, lo, "N", stmt)
        else:
            stmt = ParallelLoop(v, as_expr(lo), Var("N"), (stmt,), kind=kind)
    return Procedure(
        "RTP", ("N",), (ArrayDecl("A", (Var("N") * 8 + 64,)),), (stmt,)
    )


@settings(max_examples=60, deadline=None)
@given(parallel_procedures())
def test_parallel_do_roundtrip(proc):
    """PARALLEL / PARALLEL REDUCTION DO markers survive print->parse,
    including the ``kind`` distinction at every nesting level."""
    text = to_fortran(proc)
    back = parse_procedure(text)
    assert simplify_procedure(strip_labels(back)).body == simplify_procedure(proc).body
    assert back.params == proc.params
    assert back.arrays == proc.arrays
