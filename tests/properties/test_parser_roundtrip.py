"""Property: pretty-print then re-parse is the identity on procedures."""

from hypothesis import given, settings, strategies as st

from repro.frontend import parse_procedure
from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import Compare, Const, Min, Max, Var
from repro.ir.pretty import to_fortran
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import strip_labels
from repro.symbolic.simplify import simplify_procedure

names = st.sampled_from(["I", "J", "K", "L"])
consts = st.integers(min_value=0, max_value=9)


@st.composite
def exprs(draw, depth=2, idx_vars=("I",)):
    if depth == 0:
        leaves = [consts.map(Const), st.just(Var("N"))]
        if idx_vars:
            leaves.append(st.sampled_from([Var(v) for v in idx_vars]))
        return draw(st.one_of(*leaves))
    kind = draw(st.sampled_from(["add", "sub", "mul_c", "min", "max", "leaf"]))
    if kind == "leaf":
        return draw(exprs(depth=0, idx_vars=idx_vars))
    a = draw(exprs(depth=depth - 1, idx_vars=idx_vars))
    b = draw(exprs(depth=depth - 1, idx_vars=idx_vars))
    if kind == "add":
        return a + b
    if kind == "sub":
        return a - b
    if kind == "mul_c":
        return Const(draw(st.integers(min_value=2, max_value=4))) * a
    if kind == "min":
        return Min((a, b)) if a != b else a
    return Max((a, b)) if a != b else a


@st.composite
def procedures(draw):
    n_loops = draw(st.integers(min_value=1, max_value=3))
    idx = ["I", "J", "K"][:n_loops]
    body = assign(
        ref("A", draw(exprs(idx_vars=tuple(idx)))),
        ref("A", draw(exprs(idx_vars=tuple(idx)))) + Const(1.0),
    )
    stmt = body
    if draw(st.booleans()):
        stmt = if_(
            Compare("ne", ref("A", Var(idx[-1])), Const(0.0)),
            [body],
        )
    for v in reversed(idx):
        lo = draw(exprs(depth=1, idx_vars=tuple(x for x in idx if x != v)))
        stmt = do(v, lo, "N", stmt)
    return Procedure("RT", ("N",), (ArrayDecl("A", (Var("N") * 8 + 64,)),), (stmt,))


@settings(max_examples=80, deadline=None)
@given(procedures())
def test_roundtrip(proc):
    text = to_fortran(proc)
    back = parse_procedure(text)
    assert simplify_procedure(strip_labels(back)).body == simplify_procedure(proc).body
    assert back.params == proc.params
    assert back.arrays == proc.arrays
