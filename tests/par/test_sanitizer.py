"""The dynamic race sanitizer: shadow footprints, conflict kinds, and the
static-vs-dynamic property across every registry workload."""

from __future__ import annotations

from repro.ir.build import assign, do, parallel_do, ref
from repro.ir.expr import Const, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.par.detect import PARALLEL, annotate_procedure, classify_procedure
from repro.par.sanitizer import CONFLICT_RULE, sanitize
from repro.pipeline.workloads import available_workloads, get_workload
from repro.runtime.interpreter import execute
from repro.symbolic.assume import Assumptions

N2 = Assumptions().assume_ge("N", 2)
SIZES = {"N": 8}


def proc_of(*body):
    return Procedure(
        "p", ("N",),
        (ArrayDecl("A", (Var("N"), Var("N"))), ArrayDecl("B", (Var("N"),))),
        tuple(body),
    )


class TestConflictKinds:
    def test_flow_conflict_detected(self):
        # B(I) = B(I-1) + 1 mis-marked PARALLEL: iteration I reads what
        # iteration I-1 wrote
        p = proc_of(parallel_do("I", 2, "N",
                                assign(ref("B", "I"),
                                       ref("B", Var("I") - Const(1))
                                       + Const(1.0))))
        r = sanitize(p, SIZES)
        assert not r.clean
        kinds = {c.kind for c in r.conflicts}
        assert "flow" in kinds
        c = r.conflicts[0]
        assert c.loop == "I"
        assert c.array == "B"
        assert c.rule == CONFLICT_RULE
        assert c.iter_a != c.iter_b

    def test_anti_conflict_detected(self):
        # B(I) = B(I+1): iteration I reads what iteration I+1 overwrites
        p = proc_of(parallel_do("I", 1, Var("N") - Const(1),
                                assign(ref("B", "I"),
                                       ref("B", Var("I") + Const(1))
                                       + Const(1.0))))
        r = sanitize(p, SIZES)
        assert any(c.kind == "anti" for c in r.conflicts)

    def test_output_conflict_detected(self):
        # every iteration writes B(1)
        p = proc_of(parallel_do("I", 1, "N",
                                assign(ref("B", Const(1)), Var("I") + Const(0.0))))
        r = sanitize(p, SIZES)
        assert any(c.kind == "output" for c in r.conflicts)

    def test_structured_diagnostic_fields(self):
        p = proc_of(parallel_do("I", 2, "N",
                                assign(ref("B", "I"),
                                       ref("B", Var("I") - Const(1))
                                       + Const(1.0))))
        (c, *_) = sanitize(p, SIZES).conflicts
        doc = c.to_dict()
        assert doc["rule"] == CONFLICT_RULE
        assert doc["array"] == "B"
        assert len(doc["iterations"]) == 2
        assert doc["stmt_a"] and doc["stmt_b"]
        assert "B(" in c.describe()


class TestExemptionsAndScope:
    def test_clean_parallel_loop_is_clean(self):
        p = proc_of(parallel_do("I", 1, "N",
                                assign(ref("B", "I"),
                                       ref("B", "I") + Const(1.0))))
        r = sanitize(p, SIZES)
        assert r.clean
        assert r.loops_checked == 1

    def test_reduction_markers_are_exempt(self):
        # a reduction loop conflicts on its accumulator by construction
        p = proc_of(assign("S", Const(0.0)),
                    parallel_do("I", 1, "N",
                                assign("S", Var("S") + ref("B", "I")),
                                kind="reduction"))
        r = sanitize(p, SIZES)
        assert r.clean
        assert r.loops_checked == 0

    def test_unmarked_loops_are_not_monitored(self):
        p = proc_of(do("I", 2, "N",
                       assign(ref("B", "I"),
                              ref("B", Var("I") - Const(1)) + Const(1.0))))
        r = sanitize(p, SIZES)
        assert r.clean
        assert r.loops_checked == 0

    def test_same_iteration_reuse_is_not_a_conflict(self):
        p = proc_of(parallel_do("I", 1, "N",
                                assign(ref("B", "I"), ref("B", "I") + Const(1.0)),
                                assign(ref("B", "I"), ref("B", "I") * Const(2.0))))
        assert sanitize(p, SIZES).clean

    def test_execution_matches_plain_interpreter(self):
        w = get_workload("matmul")
        marked, _ = annotate_procedure(w.build(), w.context(None))
        r = sanitize(marked, dict(w.verify_sizes), seed=0)
        plain = execute(w.build(), dict(w.verify_sizes), seed=0)
        for a in w.build().arrays:
            assert r.env[a.name].tobytes() == plain[a.name].tobytes()

    def test_max_conflicts_bounds_the_report(self):
        p = proc_of(parallel_do("I", 1, "N",
                                assign(ref("B", Const(1)), Var("I") + Const(0.0)),
                                assign(ref("B", Const(2)), Var("I") + Const(0.0)),
                                assign(ref("B", Const(3)), Var("I") + Const(0.0))))
        r = sanitize(p, SIZES, max_conflicts=2)
        assert len(r.conflicts) == 2


class TestStaticVsDynamicProperty:
    """Satellite property: the two layers agree on every registry workload
    and both catch the same injected defect with matching rule ids."""

    def test_every_static_parallel_verdict_survives_the_sanitizer(self):
        for w in available_workloads():
            marked, verdicts = annotate_procedure(w.build(), w.context(None))
            r = sanitize(marked, dict(w.verify_sizes), seed=0)
            assert r.clean, (w.name, [c.describe() for c in r.conflicts])
            proved = sum(1 for v in verdicts if v.verdict == PARALLEL)
            assert r.loops_checked == proved

    def test_injected_carried_write_caught_by_both_layers(self):
        # mutate conv: make the statically-PARALLEL outer loop I write
        # F3(I-1) as well — a loop-carried output/flow hazard
        from repro.check.legality import postcheck
        from repro.ir.stmt import ParallelLoop
        from repro.ir.visit import walk_stmts

        w = get_workload("conv")
        proc = w.build()
        ctx = w.context(None)
        vs = {v.var: v.verdict for v in classify_procedure(proc, ctx)}
        assert vs["I"] == PARALLEL  # precondition: the seed loop is proved

        marked, _ = annotate_procedure(proc, ctx)
        (outer,) = [s for s in marked.body if isinstance(s, ParallelLoop)]
        # every iteration writes F3(1) a non-accumulation value: a carried
        # output dependence the detector cannot absorb as a reduction
        bad_stmt = assign(ref("F3", Const(1)), Var("I") + Const(0.0))
        mutated_loop = ParallelLoop(
            outer.var, outer.lo, outer.hi, outer.body + (bad_stmt,),
            step=outer.step, kind="parallel",
        )
        mutated = Procedure(
            marked.name, marked.params, marked.arrays,
            tuple(mutated_loop if s is outer else s for s in marked.body),
        )

        # static layer: the marker audit re-derives the dependence and
        # flags the stale PARALLEL marker
        diags = postcheck("parallelize", proc, mutated, ctx, {})
        assert CONFLICT_RULE in {d.rule for d in diags}

        # dynamic layer: the sanitizer observes the same race at runtime,
        # under the same rule id
        r = sanitize(mutated, dict(w.verify_sizes), seed=0)
        assert not r.clean
        assert {c.rule for c in r.conflicts} == {CONFLICT_RULE}
        assert any(c.loop == "I" and c.array == "F3" for c in r.conflicts)

        # and the fresh detector itself refuses to re-prove the loop
        fresh = {v.var: v.verdict
                 for v in classify_procedure(mutated, ctx)}
        assert fresh["I"] == "serial"
