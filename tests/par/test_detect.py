"""The static parallelism detector: verdicts, witnesses, annotation."""

from __future__ import annotations

import pytest

from repro.ir.build import assign, do, parallel_do, ref
from repro.ir.expr import Const, Var
from repro.ir.pretty import to_fortran
from repro.ir.stmt import ArrayDecl, Loop, ParallelLoop, Procedure
from repro.ir.visit import find_loops, walk_stmts
from repro.par.detect import (
    PARALLEL,
    REDUCTION,
    SERIAL,
    annotate_procedure,
    classify_loop,
    classify_procedure,
    verdict_counts,
)
from repro.pipeline.workloads import get_workload
from repro.symbolic.assume import Assumptions


def proc_of(*body, arrays=None, params=("N",)):
    arrays = arrays or (ArrayDecl("A", (Var("N"), Var("N"))),
                        ArrayDecl("B", (Var("N"),)))
    return Procedure("p", params, tuple(arrays), tuple(body))


N2 = Assumptions().assume_ge("N", 2)


def by_path(verdicts):
    return {"/".join(v.path): v for v in verdicts}


class TestElementwise:
    def test_independent_elementwise_loop_is_parallel(self):
        p = proc_of(do("I", 1, "N",
                       assign(ref("B", "I"), ref("B", "I") + Const(1.0))))
        (v,) = classify_procedure(p, N2)
        assert v.verdict == PARALLEL
        assert v.witness is None

    def test_shifted_read_is_serial_with_witness(self):
        # B(I) = B(I-1) + 1 — a distance-1 flow recurrence
        p = proc_of(do("I", 2, "N",
                       assign(ref("B", "I"),
                              ref("B", Var("I") - Const(1)) + Const(1.0))))
        (v,) = classify_procedure(p, N2)
        assert v.verdict == SERIAL
        w = v.witness
        assert w["array"] == "B"
        assert w["loops"] == ["I"]
        assert "B(I)" in w["source"] or "B(I)" in w["sink"]

    def test_inner_parallel_outer_serial(self):
        # A(I,J) = A(I-1,J): I carries, J does not
        p = proc_of(do("I", 2, "N",
                       do("J", 1, "N",
                          assign(ref("A", "I", "J"),
                                 ref("A", Var("I") - Const(1), "J")
                                 + Const(1.0)))))
        vs = by_path(classify_procedure(p, N2))
        assert vs["I"].verdict == SERIAL
        assert vs["I/J"].verdict == PARALLEL


class TestReduction:
    def test_scalar_sum_is_reduction(self):
        p = proc_of(
            assign("S", Const(0.0)),
            do("I", 1, "N", assign("S", Var("S") + ref("B", "I"))),
        )
        (v,) = classify_procedure(p, N2)
        assert v.verdict == REDUCTION
        assert v.reductions == ("S",)

    def test_array_accumulation_is_reduction(self):
        # B(J) += A(I,J) carried over I
        p = proc_of(do("I", 1, "N",
                       do("J", 1, "N",
                          assign(ref("B", "J"),
                                 ref("B", "J") + ref("A", "I", "J")))))
        vs = by_path(classify_procedure(p, N2))
        assert vs["I"].verdict == REDUCTION
        assert vs["I/J"].verdict == PARALLEL

    def test_minus_accumulation_is_reduction(self):
        p = proc_of(do("I", 1, "N",
                       assign("S", Var("S") - ref("B", "I"))))
        (v,) = classify_procedure(p, N2)
        assert v.verdict == REDUCTION

    def test_mixed_add_mul_accumulation_is_serial(self):
        p = proc_of(do("I", 1, "N",
                       assign("S", Var("S") + ref("B", "I")),
                       assign("S", Var("S") * Const(2.0))))
        (v,) = classify_procedure(p, N2)
        assert v.verdict == SERIAL
        assert v.witness["kind"] in ("scalar", "mixed-ops")

    def test_scalar_recurrence_is_serial(self):
        # S both accumulated and read elsewhere: a real recurrence
        p = proc_of(do("I", 1, "N",
                       assign("S", Var("S") + ref("B", "I")),
                       assign(ref("B", "I"), Var("S"))))
        (v,) = classify_procedure(p, N2)
        assert v.verdict == SERIAL


class TestPrivateScalars:
    def test_iteration_private_scalar_is_parallel(self):
        # T is written before it is read in every iteration: privatizable
        p = proc_of(do("I", 1, "N",
                       assign("T", ref("B", "I") + Const(1.0)),
                       assign(ref("B", "I"), Var("T"))))
        (v,) = classify_procedure(p, N2)
        assert v.verdict == PARALLEL

    def test_upward_exposed_scalar_is_serial(self):
        # T read before written: its value crosses iterations
        p = proc_of(do("I", 1, "N",
                       assign(ref("B", "I"), Var("T")),
                       assign("T", ref("B", "I") + Const(1.0))))
        (v,) = classify_procedure(p, N2)
        assert v.verdict == SERIAL
        assert v.witness == {"kind": "scalar", "scalar": "T"}


class TestSoundness:
    def test_unknown_direction_stays_serial(self):
        # The write A(I,K) can never alias the read A(K,K) when I = K+1..N,
        # but the dependence tester reports a conservative '*' at I — the
        # detector must inherit that soundness (SERIAL, never PARALLEL by
        # accident) and name the edge.
        p = proc_of(do("K", 1, "N",
                       do("I", Var("K") + Const(1), "N",
                          assign(ref("A", "I", "K"),
                                 ref("A", "I", "K") / ref("A", "K", "K")))))
        vs = by_path(classify_procedure(p, N2))
        assert vs["K/I"].verdict == SERIAL
        assert vs["K/I"].witness["array"] == "A"


class TestRegistryWorkloads:
    def test_matmul_family_has_parallel_and_reduction(self):
        w = get_workload("matmul")
        vs = by_path(classify_procedure(w.build(), w.context(None)))
        assert vs["J"].verdict == PARALLEL
        assert vs["J/K"].verdict == REDUCTION
        assert vs["J/K/I"].verdict == PARALLEL

    def test_conv_outer_loop_parallel_inner_reduction(self):
        w = get_workload("conv")
        vs = by_path(classify_procedure(w.build(), w.context(None)))
        assert vs["I"].verdict == PARALLEL
        assert vs["I/K"].verdict == REDUCTION

    def test_lu_nopivot_is_all_serial_with_witnesses(self):
        w = get_workload("lu_nopivot")
        vs = classify_procedure(w.build(), w.context(None))
        assert all(v.verdict == SERIAL for v in vs)
        assert all(v.witness is not None for v in vs)

    def test_every_workload_classifies_every_loop(self):
        from repro.pipeline.workloads import available_workloads

        for w in available_workloads():
            proc = w.build()
            vs = classify_procedure(proc, w.context(None))
            assert len(vs) == len(find_loops(proc))
            counts = verdict_counts(vs)
            assert sum(counts.values()) == len(vs)


class TestAnnotation:
    def test_annotate_marks_proved_loops(self):
        w = get_workload("matmul")
        new, verdicts = annotate_procedure(w.build(), w.context(None))
        marked = [s for s in walk_stmts(new) if isinstance(s, ParallelLoop)]
        proved = [v for v in verdicts if v.verdict in (PARALLEL, REDUCTION)]
        assert len(marked) == len(proved)
        kinds = sorted(m.kind for m in marked)
        assert kinds == sorted(v.verdict for v in proved)
        text = to_fortran(new)
        assert "PARALLEL DO" in text
        assert "PARALLEL REDUCTION DO" in text

    def test_annotate_restricted_to_named_loops(self):
        w = get_workload("matmul")
        new, _ = annotate_procedure(w.build(), w.context(None), loops=("J",))
        marked = [s for s in walk_stmts(new) if isinstance(s, ParallelLoop)]
        assert [m.var for m in marked] == ["J"]

    def test_annotation_demotes_stale_markers(self):
        # a hand-planted wrong marker on a serial loop is removed
        p = proc_of(parallel_do("I", 2, "N",
                                assign(ref("B", "I"),
                                       ref("B", Var("I") - Const(1))
                                       + Const(1.0))))
        new, (v,) = annotate_procedure(p, N2)
        assert v.verdict == SERIAL
        (loop,) = find_loops(new)
        assert isinstance(loop, Loop)
        assert not isinstance(loop, ParallelLoop)

    def test_serial_interpreter_ignores_markers(self):
        from repro.runtime.interpreter import execute

        w = get_workload("matmul")
        plain = execute(w.build(), dict(w.verify_sizes), seed=0)
        marked, _ = annotate_procedure(w.build(), w.context(None))
        annotated = execute(marked, dict(w.verify_sizes), seed=0)
        for a in w.build().arrays:
            assert plain[a.name].tobytes() == annotated[a.name].tobytes()


class TestParallelLoopNode:
    def test_is_a_loop(self):
        p = parallel_do("I", 1, "N", assign(ref("B", "I"), Const(0.0)))
        assert isinstance(p, Loop)
        assert p.kind == "parallel"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            parallel_do("I", 1, "N", assign(ref("B", "I"), Const(0.0)),
                        kind="speculative")

    def test_marker_changes_fingerprint(self):
        from repro.ir.fingerprint import ir_fingerprint

        body = assign(ref("B", "I"), ref("B", "I") + Const(1.0))
        plain = proc_of(do("I", 1, "N", body))
        marked = proc_of(parallel_do("I", 1, "N", body))
        assert ir_fingerprint(plain) != ir_fingerprint(marked)
