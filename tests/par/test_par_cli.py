"""``python -m repro.par`` exit codes and artifacts."""

from __future__ import annotations

import json

from repro.artifacts import payload_of, validate_document
from repro.par.cli import main


class TestClassify:
    def test_classify_all_exits_zero(self, capsys):
        assert main(["classify", "--all"]) == 0
        out = capsys.readouterr().out
        for name in ("matmul", "conv", "lu_nopivot"):
            assert name in out
        assert "PARALLEL" in out and "SERIAL" in out
        assert "witness" in out  # serial verdicts name their edge

    def test_classify_writes_valid_report(self, tmp_path, capsys):
        path = tmp_path / "classify.json"
        assert main(["classify", "matmul", "--json", str(path)]) == 0
        doc = json.load(open(path))
        assert validate_document(doc) == []
        payload = payload_of(doc)
        assert payload["workloads"][0]["workload"] == "matmul"
        assert payload["workloads"][0]["sanitizer"] is None

    def test_unknown_workload_is_usage_error(self, capsys):
        assert main(["classify", "nosuch"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_workloads_is_usage_error(self, capsys):
        assert main(["classify"]) == 2


class TestSanitize:
    def test_sanitize_all_clean_exits_zero(self, capsys):
        assert main(["sanitize", "--all"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "CONFLICT" not in out


class TestRun:
    def test_sharded_run_exits_zero(self, capsys):
        assert main(["run", "conv", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "identical to serial: True" in out

    def test_run_without_parallel_loop_is_usage_error(self, capsys):
        assert main(["run", "lu_nopivot"]) == 2
        assert "no top-level PARALLEL DO" in capsys.readouterr().err


class TestBench:
    def test_bench_writes_valid_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_par.json"
        assert main(["bench", "--workloads", "matmul", "conv",
                     "--run", "conv", "--json", str(path)]) == 0
        doc = json.load(open(path))
        assert validate_document(doc) == []
        payload = payload_of(doc)
        assert {w["workload"] for w in payload["workloads"]} == {"matmul", "conv"}
        assert all(w["sanitizer"]["clean"] for w in payload["workloads"])
        assert payload["run"]["identical"] is True
        assert payload["run"]["speedup"] is not None
        assert payload["totals"]["conflicts"] == 0
