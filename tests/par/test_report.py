"""The ``repro.par/1`` payload: build, self-validation, perf flattening."""

from __future__ import annotations

from repro.artifacts import payload_of, validate_document
from repro.artifacts.registry import PAR_REPORT
from repro.par.detect import classify_procedure
from repro.par.report import (
    build_report,
    build_workload_entry,
    flatten_report,
    validate_report,
    write_report,
)
from repro.pipeline.workloads import get_workload


def sample_report(sanitizer=True):
    w = get_workload("matmul")
    proc = w.build()
    verdicts = classify_procedure(proc, w.context(None))
    san = {"loops_checked": 2, "conflicts": [], "clean": True} if sanitizer else None
    entry = build_workload_entry("matmul", proc.name, verdicts, sanitizer=san)
    return build_report([entry], meta={"workloads": "matmul"})


class TestBuildAndValidate:
    def test_valid_report_passes(self):
        assert validate_report(sample_report()) == []

    def test_totals_sum_workload_counts(self):
        doc = sample_report()
        t = doc["totals"]
        assert t["loops"] == t["parallel"] + t["reduction"] + t["serial"]
        assert t["loops"] == len(doc["workloads"][0]["loops"])

    def test_tampered_totals_rejected(self):
        doc = sample_report()
        doc["totals"]["parallel"] += 1
        assert any("totals" in e for e in validate_report(doc))

    def test_tampered_counts_rejected(self):
        doc = sample_report()
        doc["workloads"][0]["counts"]["serial"] += 1
        assert any("counts" in e for e in validate_report(doc))

    def test_unknown_verdict_rejected(self):
        doc = sample_report()
        doc["workloads"][0]["loops"][0]["verdict"] = "vectorized"
        assert any("unknown verdict" in e for e in validate_report(doc))

    def test_serial_without_witness_rejected(self):
        w = get_workload("lu_nopivot")
        verdicts = classify_procedure(w.build(), w.context(None))
        entry = build_workload_entry("lu_nopivot", "lu_point", verdicts)
        doc = build_report([entry])
        del doc["workloads"][0]["loops"][0]["witness"]
        assert any("witness" in e for e in validate_report(doc))

    def test_lying_clean_flag_rejected(self):
        doc = sample_report()
        doc["workloads"][0]["sanitizer"]["clean"] = False
        assert any("contradicts" in e for e in validate_report(doc))

    def test_run_must_be_identical(self):
        doc = sample_report()
        doc["run"] = {
            "workload": "matmul", "loop": "J", "shards": 2, "workers": 2,
            "iterations": 12, "serial_s": 0.1, "sharded_s": 0.2,
            "identical": False,
        }
        assert any("identical" in e for e in validate_report(doc))
        doc["run"]["identical"] = True
        assert validate_report(doc) == []


class TestFlatten:
    def test_deterministic_metrics_present(self):
        m = flatten_report(sample_report())
        t = sample_report()["totals"]
        assert m["par:verdict.parallel"] == t["parallel"]
        assert m["par:verdict.reduction"] == t["reduction"]
        assert m["par:verdict.serial"] == t["serial"]
        assert m["par:loops"] == t["loops"]
        assert m["par:sanitizer.conflicts"] == 0
        assert m["par:matmul.serial"] == t["serial"]

    def test_run_metrics_flattened_when_present(self):
        doc = sample_report()
        doc["run"] = {
            "workload": "matmul", "loop": "J", "shards": 2, "workers": 2,
            "iterations": 12, "serial_s": 0.5, "sharded_s": 0.25,
            "speedup": 2.0, "identical": True,
        }
        m = flatten_report(doc)
        assert m["par:run.speedup"] == 2.0
        assert m["par:run.serial_s"] == 0.5


class TestEnvelope:
    def test_write_report_envelopes_and_registers(self, tmp_path):
        import json

        path = tmp_path / "par.json"
        env = write_report(str(path), sample_report())
        assert env["schema"].startswith("repro.par")
        on_disk = json.load(open(path))
        assert validate_document(on_disk) == []
        assert on_disk["payload"]["schema"] == PAR_REPORT
        assert payload_of(on_disk) == on_disk["payload"]

    def test_registry_routes_par_reports(self):
        from repro.artifacts import registry

        kind = registry.get(PAR_REPORT)
        assert kind.validate_payload(sample_report()) == []
        assert callable(kind.flatten)
        assert kind.flatten(sample_report())["par:loops"] > 0
