"""Sharded PARALLEL DO execution: slicing, the shard job, and the
merge protocol's byte-identical guarantee."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.par.shard import (
    decode_sizes,
    encode_sizes,
    iteration_slice,
    run_shard,
    run_sharded,
    target_loop,
)
from repro.par.detect import annotate_procedure
from repro.pipeline.workloads import get_workload
from repro.runtime.interpreter import execute


class TestIterationSlice:
    def test_shards_partition_the_iteration_list(self):
        for lo, hi, step in ((1, 12, 1), (1, 12, 2), (12, 1, -1),
                             (1, 0, 1), (1, 7, 3)):
            full = list(range(lo, hi + (1 if step > 0 else -1), step))
            for shards in (1, 2, 3, 5):
                parts = [iteration_slice(lo, hi, step, i, shards)
                         for i in range(shards)]
                assert [v for p in parts for v in p] == full

    def test_balanced_split(self):
        parts = [iteration_slice(1, 10, 1, i, 2) for i in range(2)]
        assert [len(p) for p in parts] == [5, 5]

    def test_zero_step_rejected(self):
        with pytest.raises(PipelineError, match="zero"):
            iteration_slice(1, 10, 0, 0, 2)

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(PipelineError, match="out of range"):
            iteration_slice(1, 10, 1, 2, 2)

    def test_chunked_shards_partition_the_iteration_list(self):
        for lo, hi, step in ((1, 12, 1), (1, 12, 2), (12, 1, -1),
                             (1, 0, 1), (1, 7, 3)):
            full = list(range(lo, hi + (1 if step > 0 else -1), step))
            for shards in (1, 2, 3):
                for chunk in (1, 2, 4, 100):
                    parts = [
                        iteration_slice(lo, hi, step, i, shards, chunk)
                        for i in range(shards)
                    ]
                    assert sorted(v for p in parts for v in p) == \
                        sorted(full), (lo, hi, step, shards, chunk)
                    # each slice preserves iteration order
                    order = {v: k for k, v in enumerate(full)}
                    for p in parts:
                        assert [order[v] for v in p] == \
                            sorted(order[v] for v in p)

    def test_chunk_one_is_round_robin(self):
        parts = [iteration_slice(1, 6, 1, i, 2, 1) for i in range(2)]
        assert parts == [[1, 3, 5], [2, 4, 6]]

    def test_chunk_zero_is_contiguous(self):
        assert iteration_slice(1, 10, 1, 0, 2, 0) == \
            iteration_slice(1, 10, 1, 0, 2)

    def test_negative_chunk_rejected(self):
        with pytest.raises(PipelineError, match="chunk"):
            iteration_slice(1, 10, 1, 0, 2, -1)


class TestSizeEncoding:
    def test_roundtrip(self):
        sizes = {"N": 13, "KS": 4, "DT": 0.5}
        assert decode_sizes(encode_sizes(sizes)) == sizes

    def test_canonical_order(self):
        assert encode_sizes({"B": 1, "A": 2}) == encode_sizes({"A": 2, "B": 1})

    def test_empty(self):
        assert decode_sizes("") == {}


class TestTargetLoop:
    def test_first_top_level_parallel_do(self):
        w = get_workload("conv")
        proc, _ = annotate_procedure(w.build(), w.context(None))
        t, loop = target_loop(proc)
        assert loop.var == "I"
        assert proc.body[t] is loop

    def test_no_marker_raises(self):
        w = get_workload("lu_nopivot")
        proc, _ = annotate_procedure(w.build(), w.context(None))
        with pytest.raises(PipelineError, match="no top-level PARALLEL DO"):
            target_loop(proc)

    def test_unknown_loop_var_raises(self):
        w = get_workload("conv")
        proc, _ = annotate_procedure(w.build(), w.context(None))
        with pytest.raises(PipelineError, match="'Z'"):
            target_loop(proc, "Z")


class TestRunShard:
    def options(self, shard, shards, workload):
        return {
            "loop": "I",
            "shard": shard,
            "shards": shards,
            "sizes": encode_sizes(dict(workload.verify_sizes)),
            "seed": 0,
        }

    def test_shard_write_sets_union_to_the_serial_result(self):
        w = get_workload("conv")
        proc, _ = annotate_procedure(w.build(), w.context(None))
        ref_env = execute(proc, dict(w.verify_sizes), seed=0)
        merged = {}
        total_iters = 0
        for i in range(3):
            out = run_shard("conv", self.options(i, 3, w))
            total_iters += out["iterations"]
            for array, entries in out["writes"].items():
                for idx, value in entries:
                    merged[(array, tuple(idx))] = value
        # every written element carries its serial value
        for (array, idx), value in merged.items():
            assert ref_env[array][tuple(i - 1 for i in idx)] == value
        lo, hi = 1, int(ref_env["N3"])
        assert total_iters == hi - lo + 1

    def test_shard_results_are_json_clean(self):
        import json

        w = get_workload("conv")
        out = run_shard("conv", self.options(0, 2, w))
        assert json.loads(json.dumps(out)) == out


class TestRunSharded:
    def test_conv_sharded_matches_serial(self):
        result = run_sharded("conv", shards=2, workers=2)
        assert result["identical"] is True
        assert result["shards"] == 2
        assert result["iterations"] > 0
        assert result["serial_s"] >= 0 and result["sharded_s"] >= 0
        assert set(result["statuses"]) <= {"computed", "hit", "retried"}

    def test_matmul_sharded_matches_serial_small(self):
        result = run_sharded("matmul", shards=2, workers=2,
                             sizes={"N": 8, "KS": 4})
        assert result["identical"] is True

    def test_uneven_shard_count(self):
        # more shards than iterations in some slices still merges exactly
        result = run_sharded("conv", shards=3, workers=2)
        assert result["identical"] is True

    def test_chunked_merge_is_byte_identical_to_contiguous(self):
        # the acceptance property for --chunk: both granularities are
        # asserted byte-identical to the serial interpreter inside
        # run_sharded, so equal checksums mean chunked == contiguous
        # == serial, byte for byte
        contiguous = run_sharded("conv", shards=2, workers=2)
        chunked = run_sharded("conv", shards=2, workers=2, chunk=3)
        assert contiguous["identical"] is True
        assert chunked["identical"] is True
        assert chunked["chunk"] == 3 and contiguous["chunk"] == 0
        assert chunked["checksum"] == contiguous["checksum"]
        assert chunked["iterations"] == contiguous["iterations"]

    def test_chunked_scalar_finals_follow_the_global_last_iteration(self):
        # with chunk=1 over 2 shards, the globally-last iteration can
        # live on shard 0 — the merge must take scalar finals from the
        # owner of that iteration, not the last shard in shard order
        result = run_sharded("conv", shards=2, workers=2, chunk=1)
        assert result["identical"] is True

    def test_chunk_enters_the_job_key_only_when_set(self):
        from repro.serve.jobs import JobSpec, job_key

        def spec(**opts):
            options = {"loop": "I", "shard": 0, "shards": 2,
                       "sizes": "DT=0.5,N1=24,N2=18,N3=20", "seed": 0}
            options.update(opts)
            return JobSpec(kind="par_shard", workload="conv",
                           options=options)

        assert job_key(spec()) != job_key(spec(chunk=2))
        assert job_key(spec(chunk=2)) != job_key(spec(chunk=3))

    def test_serial_workload_has_nothing_to_shard(self):
        with pytest.raises(PipelineError, match="no top-level PARALLEL DO"):
            run_sharded("lu_nopivot", shards=2)

    def test_divergent_merge_raises(self, monkeypatch):
        # corrupt one shard's write set in flight: the byte-exact
        # comparison must catch it
        from repro.par import shard as shard_mod

        real = shard_mod.run_shard

        def corrupt(name, options):
            out = real(name, options)
            if int(options["shard"]) == 0 and out["writes"]:
                array = next(iter(out["writes"]))
                out["writes"][array][0][1] += 1.0
            return out

        monkeypatch.setattr(shard_mod, "run_shard", corrupt)
        # in-process pool would not see the monkeypatch; run the parent
        # side against a stub pool that calls the (patched) worker body
        class _Outcome:
            ok = True
            status = "computed"

            def __init__(self, value):
                self.value = value

        class _StubPool:
            def run(self, specs):
                return [
                    _Outcome(shard_mod.run_shard(s.workload, s.options))
                    for s in specs
                ]

        with pytest.raises(PipelineError, match="diverged"):
            run_sharded("conv", shards=2, pool=_StubPool())


class TestShardJobKey:
    def spec(self, **opts):
        from repro.serve.jobs import JobSpec

        options = {"loop": "I", "shard": 0, "shards": 2,
                   "sizes": "DT=0.5,N1=24,N2=18,N3=20", "seed": 0}
        options.update(opts)
        return JobSpec(kind="par_shard", workload="conv", options=options)

    def test_same_slice_shares_a_key(self):
        from repro.serve.jobs import job_key

        assert job_key(self.spec()) == job_key(self.spec())

    def test_different_slices_get_different_keys(self):
        from repro.serve.jobs import job_key

        assert job_key(self.spec()) != job_key(self.spec(shard=1))
        assert job_key(self.spec()) != job_key(self.spec(shards=3))
        assert job_key(self.spec()) != job_key(self.spec(seed=1))
        assert job_key(self.spec()) != job_key(
            self.spec(sizes="DT=0.5,N1=32,N2=18,N3=20"))
