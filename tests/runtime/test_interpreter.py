"""Reference interpreter semantics."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import Call, Const, IntDiv, Max, Min, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.runtime.interpreter import Interpreter, execute, idiv, make_env


class TestIdiv:
    @pytest.mark.parametrize(
        "a,b,q", [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (6, 3, 2)]
    )
    def test_truncates_toward_zero(self, a, b, q):
        assert idiv(a, b) == q

    def test_zero_divisor(self):
        with pytest.raises(SemanticsError):
            idiv(1, 0)


class TestExpressions:
    def setup_method(self):
        self.interp = Interpreter({"I": 7, "N": 10, "X": 2.5})

    def test_arith(self):
        assert self.interp.eval(Var("I") + 1) == 8
        assert self.interp.eval(Var("I") * 2 - Var("N")) == 4

    def test_integer_slash_is_integer_division(self):
        assert self.interp.eval(Var("I") / Const(2)) == 3

    def test_float_division(self):
        assert self.interp.eval(Var("X") / Const(2)) == 1.25

    def test_min_max(self):
        assert self.interp.eval(Min((Var("I"), Var("N")))) == 7
        assert self.interp.eval(Max((Var("I"), Var("N"), Const(3)))) == 10

    def test_intdiv_node(self):
        assert self.interp.eval(IntDiv(Var("N"), Const(3))) == 3

    def test_intrinsics(self):
        assert self.interp.eval(Call("SQRT", (Const(9.0),))) == 3.0
        assert self.interp.eval(Call("ABS", (Const(-4),))) == 4
        assert self.interp.eval(Call("MOD", (Const(7), Const(3)))) == 1

    def test_comparisons_and_logic(self):
        assert self.interp.eval(Var("I").lt("N")) is True
        from repro.ir.expr import LogicalOp, Not

        assert self.interp.eval(LogicalOp("and", (Var("I").lt("N"), Var("I").gt(0))))
        assert self.interp.eval(Not(Var("I").eq_(7))) is False

    def test_unbound_variable(self):
        with pytest.raises(SemanticsError):
            self.interp.eval(Var("ZZZ"))


class TestLoops:
    def _proc(self, body):
        return Procedure("t", ("N",), (ArrayDecl("A", (Var("N"),)),), body)

    def test_zero_trip_loop(self):
        p = self._proc((do("I", 5, 4, assign(ref("A", "I"), 999.0)),))
        env = execute(p, {"N": 6}, arrays={"A": np.zeros(6)})
        assert np.all(env["A"] == 0.0)

    def test_negative_step(self):
        p = self._proc(
            (do("I", "N", 1, assign(ref("A", "I"), Var("I") * 1.0), step=-1),)
        )
        env = execute(p, {"N": 5}, arrays={"A": np.zeros(5)})
        assert list(env["A"]) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_bounds_evaluated_once(self):
        # N is rewritten inside the loop; trip count must not change
        p = Procedure(
            "t",
            ("N",),
            (ArrayDecl("A", (Const(10),)),),
            (
                do(
                    "I",
                    1,
                    Var("M"),
                    assign(ref("A", "I"), 1.0),
                    ),
            ),
        )
        # M as a scalar set before the loop, then changed inside: emulate
        body = (
            assign("M", 3),
            do("I", 1, Var("M"), assign(ref("A", "I"), 1.0), assign("M", 9)),
        )
        p = Procedure("t", (), (ArrayDecl("A", (Const(10),)),), body)
        env = execute(p, {}, arrays={"A": np.zeros(10)})
        assert int(np.sum(env["A"])) == 3

    def test_out_of_bounds_detected(self):
        p = self._proc((do("I", 1, Var("N") + 1, assign(ref("A", "I"), 1.0)),))
        with pytest.raises(SemanticsError):
            execute(p, {"N": 4})

    def test_rank_mismatch_detected(self):
        p = self._proc((assign(ref("A", 1, 1), 0.0),))
        with pytest.raises(SemanticsError):
            execute(p, {"N": 4})


class TestGuards:
    def test_if_else(self):
        p = Procedure(
            "t",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (
                do(
                    "I",
                    1,
                    "N",
                    if_(
                        ref("A", "I").gt(0.5),
                        [assign(ref("A", "I"), 1.0)],
                        [assign(ref("A", "I"), 0.0)],
                    ),
                ),
            ),
        )
        a = np.array([0.2, 0.9, 0.7, 0.1])
        env = execute(p, {"N": 4}, arrays={"A": a})
        assert list(env["A"]) == [0.0, 1.0, 1.0, 0.0]


class TestMakeEnv:
    def test_missing_parameter(self, vecadd_proc):
        with pytest.raises(SemanticsError):
            make_env(vecadd_proc, {"N": 3})

    def test_float_parameter_preserved(self):
        p = Procedure("t", ("DT",), (ArrayDecl("A", (Const(2),)),), (assign(ref("A", 1), Var("DT")),))
        env = execute(p, {"DT": 0.25}, arrays={"A": np.zeros(2)})
        assert env["A"][0] == 0.25

    def test_shape_mismatch(self, vecadd_proc):
        with pytest.raises(SemanticsError):
            make_env(vecadd_proc, {"N": 3, "M": 4}, arrays={"A": np.zeros(7)})

    def test_random_fill_reproducible(self, vecadd_proc):
        e1 = make_env(vecadd_proc, {"N": 3, "M": 4}, seed=5)
        e2 = make_env(vecadd_proc, {"N": 3, "M": 4}, seed=5)
        assert np.array_equal(e1["A"], e2["A"])

    def test_fortran_order(self, vecadd_proc):
        env = make_env(vecadd_proc, {"N": 3, "M": 4})
        assert env["A"].flags.f_contiguous


class TestTracing:
    def test_trace_order_and_kinds(self):
        events = []

        class T:
            def access(self, array, index, is_write):
                events.append((array, index, is_write))

        p = Procedure(
            "t",
            (),
            (ArrayDecl("A", (Const(3),)),),
            (assign(ref("A", 2), ref("A", 1) + 1.0),),
        )
        env = make_env(p, {}, arrays={"A": np.zeros(3)})
        Interpreter(env, T()).run(p.body)
        assert events == [("A", (1,), False), ("A", (2,), True)]
