"""Compiled-code engine: must match the interpreter exactly."""

import numpy as np
import pytest

from repro.errors import SemanticsError
from repro.ir.build import assign, block_do, do, if_, ref
from repro.ir.expr import Call, Const, IntDiv, Min, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.runtime.codegen import compile_procedure, generate_source
from repro.runtime.interpreter import execute


def cross_check(proc, sizes, seed=3):
    """Interpreter vs codegen on identical inputs."""
    ei = execute(proc, sizes, seed=seed)
    ec = compile_procedure(proc)(sizes, seed=seed)
    for a in proc.arrays:
        assert np.array_equal(ei[a.name], ec[a.name]), a.name


class TestAgreementWithInterpreter:
    def test_vecadd(self, vecadd_proc):
        cross_check(vecadd_proc, {"N": 7, "M": 9})

    def test_triangular_nest(self):
        p = Procedure(
            "tri",
            ("N",),
            (ArrayDecl("A", (Var("N"), Var("N"))),),
            (
                do(
                    "J",
                    1,
                    "N",
                    do(
                        "I",
                        "J",
                        "N",
                        assign(ref("A", "I", "J"), ref("A", "I", "J") * 2.0),
                    ),
                ),
            ),
        )
        cross_check(p, {"N": 8})

    def test_minmax_bounds_and_intdiv(self):
        p = Procedure(
            "mm",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (
                do(
                    "I",
                    1,
                    Min((Var("N"), IntDiv(Var("N") * 3, Const(2)))),
                    assign(ref("A", "I"), ref("A", "I") + 1.0),
                ),
            ),
        )
        cross_check(p, {"N": 6})

    def test_guards_and_intrinsics(self):
        p = Procedure(
            "g",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (
                do(
                    "I",
                    1,
                    "N",
                    if_(
                        ref("A", "I").gt(0.5),
                        [assign(ref("A", "I"), Call("DSQRT", (ref("A", "I"),)))],
                        [assign(ref("A", "I"), Const(0.0) - ref("A", "I"))],
                    ),
                ),
            ),
        )
        cross_check(p, {"N": 16})

    def test_mod_in_bounds(self):
        p = Procedure(
            "m",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (
                do(
                    "I",
                    1 + Call("MOD", (Var("N"), Const(4))),
                    "N",
                    assign(ref("A", "I"), 1.0),
                ),
            ),
        )
        cross_check(p, {"N": 11})


class TestGeneratedSource:
    def test_plain_indexing(self, vecadd_proc):
        src = generate_source(vecadd_proc)
        assert "A[I - 1]" in src
        assert "range(1, N + 1)" in src

    def test_traced_uses_callbacks(self, vecadd_proc):
        src = generate_source(vecadd_proc, traced=True)
        assert "_ld('A'" in src and "_st('A'" in src

    def test_source_attached_to_runner(self, vecadd_proc):
        run = compile_procedure(vecadd_proc)
        assert "def _kernel" in run.source


class TestTracedRun:
    def test_trace_matches_interpreter_trace(self, vecadd_proc):
        logs = {"interp": [], "codegen": []}

        class T:
            def __init__(self, key):
                self.key = key

            def access(self, array, index, is_write):
                logs[self.key].append((array, tuple(index), is_write))

        env = execute(vecadd_proc, {"N": 3, "M": 4}, tracer=T("interp"), seed=1)
        compile_procedure(vecadd_proc, traced=True)(
            {"N": 3, "M": 4}, tracer=T("codegen"), seed=1
        )
        assert logs["interp"] == logs["codegen"]

    def test_tracer_requires_traced_compilation(self, vecadd_proc):
        run = compile_procedure(vecadd_proc)

        class T:
            def access(self, *a):  # pragma: no cover
                pass

        with pytest.raises(ValueError):
            run({"N": 3, "M": 4}, tracer=T())


class TestErrors:
    def test_extensions_must_be_lowered(self):
        p = Procedure(
            "b",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (block_do("K", 1, "N", assign(ref("A", "K"), 0.0)),),
        )
        with pytest.raises(SemanticsError):
            compile_procedure(p)
