"""Cross-engine edge cases: zero-trip DO, IntDiv on negatives, bounds-once.

Fortran-77 semantics the two engines must agree on *exactly*:

- a DO whose iteration count is zero or negative executes its body zero
  times (DO I = 3, 2 falls straight through);
- integer division truncates toward zero, including for negative
  operands (-7/2 = -3, 7/-2 = -3, -7/-2 = 3) — *not* Python floor;
- loop bounds are evaluated once on entry; assignments to a bound
  variable inside the body do not change the trip count.

Each case runs plain (array results compared) and, where access order
matters, traced (tracer event sequences compared element-wise).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.build import assign, do, ref
from repro.ir.expr import BinOp, Const, IntDiv, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.runtime.codegen import compile_procedure
from repro.runtime.interpreter import execute, idiv


class RecordingTracer:
    def __init__(self):
        self.events: list[tuple[str, tuple[int, ...], bool]] = []

    def access(self, array, index, is_write):
        self.events.append((array, tuple(index), is_write))


def run_both(proc, sizes, tracer_pair=None, seed=0):
    """Execute on both engines; return (interp_env, codegen_env)."""
    if tracer_pair is None:
        ei = execute(proc, sizes, seed=seed)
        ec = compile_procedure(proc)(sizes, seed=seed)
    else:
        ti, tc = tracer_pair
        ei = execute(proc, sizes, tracer=ti, seed=seed)
        ec = compile_procedure(proc, traced=True)(sizes, tracer=tc, seed=seed)
    for a in proc.arrays:
        assert np.array_equal(ei[a.name], ec[a.name]), a.name
    return ei, ec


class TestIntDivTruncation:
    def test_idiv_helper_truncates_toward_zero(self):
        assert idiv(-7, 2) == -3
        assert idiv(7, -2) == -3
        assert idiv(-7, -2) == 3
        assert idiv(7, 2) == 3

    def test_intdiv_node_on_negative_constants(self):
        p = Procedure(
            "negdiv",
            (),
            (ArrayDecl("OUT", (Const(4),), dtype="i8"),),
            (
                assign(ref("OUT", 1), IntDiv(Const(-7), Const(2))),
                assign(ref("OUT", 2), IntDiv(Const(7), Const(-2))),
                assign(ref("OUT", 3), IntDiv(Const(-7), Const(-2))),
                assign(ref("OUT", 4), IntDiv(Const(7), Const(2))),
            ),
        )
        ei, _ = run_both(p, {})
        assert ei["OUT"].tolist() == [-3, -3, 3, 3]

    def test_int_slash_on_runtime_negatives(self):
        # (I - 5) / 2 sweeps through negative, zero, positive numerators;
        # the plain "/" BinOp on two ints must hit the same idiv path.
        p = Procedure(
            "rundiv",
            ("N",),
            (ArrayDecl("OUT", (Var("N"),), dtype="i8"),),
            (
                do(
                    "I",
                    1,
                    "N",
                    assign(
                        ref("OUT", "I"),
                        BinOp("/", Var("I") - Const(5), Const(2)),
                    ),
                ),
            ),
        )
        ei, _ = run_both(p, {"N": 7})
        assert ei["OUT"].tolist() == [-2, -1, -1, 0, 0, 0, 1]


class TestZeroTripLoops:
    def _counter_proc(self):
        # Each loop bumps its own counter; zero-trip loops must leave 0.
        return Procedure(
            "trips",
            ("N",),
            (ArrayDecl("CNT", (Const(3),), dtype="i8"),),
            (
                do("I", 3, 2, assign(ref("CNT", 1), ref("CNT", 1) + 1)),
                do(
                    "J",
                    1,
                    Var("N") - Const(1),
                    assign(ref("CNT", 2), ref("CNT", 2) + 1),
                ),
                do(
                    "K",
                    5,
                    1,
                    assign(ref("CNT", 3), ref("CNT", 3) + 1),
                    step=-1,
                ),
            ),
        )

    def test_zero_trip_bodies_never_run(self):
        ei, _ = run_both(self._counter_proc(), {"N": 1})
        # DO 3,2 -> 0 trips; DO 1,N-1 with N=1 -> 0 trips; DO 5,1,-1 -> 5.
        assert ei["CNT"].tolist() == [0, 0, 5]

    def test_symbolic_bound_becomes_positive(self):
        ei, _ = run_both(self._counter_proc(), {"N": 4})
        assert ei["CNT"].tolist() == [0, 3, 5]

    def test_zero_trip_emits_no_traced_accesses(self):
        p = Procedure(
            "zt",
            ("N",),
            (ArrayDecl("A", (Const(8),)),),
            (
                do(
                    "I",
                    1,
                    Var("N") - Const(1),
                    assign(ref("A", "I"), ref("A", "I") * 2.0),
                ),
            ),
        )
        ti, tc = RecordingTracer(), RecordingTracer()
        run_both(p, {"N": 1}, tracer_pair=(ti, tc))
        assert ti.events == []
        assert tc.events == []


class TestBoundsEvaluatedOnce:
    def _mutating_proc(self):
        # The body rewrites the loop's own upper-bound variable; F77
        # evaluates bounds once, so the trip count stays at the entry M.
        return Procedure(
            "once",
            ("M",),
            (ArrayDecl("CNT", (Const(1),), dtype="i8"),),
            (
                do(
                    "I",
                    1,
                    "M",
                    assign(Var("M"), Var("M") + 1),
                    assign(ref("CNT", 1), ref("CNT", 1) + 1),
                ),
            ),
        )

    def test_trip_count_fixed_at_entry(self):
        ei, _ = run_both(self._mutating_proc(), {"M": 4})
        assert ei["CNT"].tolist() == [4]

    def test_interpreter_sees_final_scalar(self):
        # Scalar mutation is visible in the interpreter env (codegen
        # passes scalars by value, so only arrays are comparable).
        env = execute(self._mutating_proc(), {"M": 4})
        assert env["M"] == 8


class TestTracedAgreement:
    def test_access_sequences_identical(self):
        p = Procedure(
            "seq",
            ("N",),
            (ArrayDecl("A", (Var("N"),)), ArrayDecl("B", (Var("N"),))),
            (
                do(
                    "I",
                    1,
                    "N",
                    assign(ref("B", "I"), ref("A", "I") + ref("A", 1)),
                ),
            ),
        )
        ti, tc = RecordingTracer(), RecordingTracer()
        run_both(p, {"N": 5}, tracer_pair=(ti, tc))
        assert ti.events == tc.events
        # per iteration: read A(I), read A(1), then write B(I)
        assert ti.events[:3] == [
            ("A", (1,), False),
            ("A", (1,), False),
            ("B", (1,), True),
        ]
        assert len(ti.events) == 15

    def test_plain_compile_rejects_tracer(self):
        p = Procedure(
            "p",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (do("I", 1, "N", assign(ref("A", "I"), Const(0.0))),),
        )
        run = compile_procedure(p)
        with pytest.raises(ValueError):
            run({"N": 3}, tracer=RecordingTracer())
