"""Semantic-equivalence validator behaviour."""

import numpy as np
import pytest

from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.runtime.validate import assert_equivalent, run_on_random


def proc_with(body, name="p"):
    return Procedure(name, ("N",), (ArrayDecl("A", (Var("N"),)),), body)


class TestAssertEquivalent:
    def test_detects_differences_with_location(self):
        p1 = proc_with((do("I", 1, "N", assign(ref("A", "I"), Const(1.0))),))
        p2 = proc_with((do("I", 1, "N", assign(ref("A", "I"), Const(2.0))),))
        with pytest.raises(AssertionError, match="elements differ"):
            assert_equivalent(p1, p2, {"N": 4})

    def test_accepts_equal(self):
        p1 = proc_with((do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") * 2.0)),))
        assert_equivalent(p1, p1.with_body(p1.body), {"N": 4})

    def test_tolerant_mode(self):
        p1 = proc_with((do("I", 1, "N", assign(ref("A", "I"), (ref("A", "I") + 1.0) + 1e-13)),))
        p2 = proc_with((do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") + 1.0)),))
        with pytest.raises(AssertionError):
            assert_equivalent(p1, p2, {"N": 4}, exact=True)
        assert_equivalent(p1, p2, {"N": 4}, exact=False, atol=1e-10)

    def test_compiler_temporaries_ignored(self):
        p1 = proc_with((do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") + 1.0)),))
        p2 = p1.adding_arrays(ArrayDecl("KLB", (Var("N"),), "i8"))
        assert_equivalent(p1, p2, {"N": 5})

    def test_no_shared_arrays_is_an_error(self):
        p1 = proc_with((assign(ref("A", 1), 0.0),))
        p2 = Procedure("q", ("N",), (ArrayDecl("B", (Var("N"),)),), (assign(ref("B", 1), 0.0),))
        with pytest.raises(AssertionError, match="share no arrays"):
            assert_equivalent(p1, p2, {"N": 3})

    def test_engines_agree(self):
        p = proc_with((do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") * 3.0)),))
        ei = run_on_random(p, {"N": 6}, engine="interp", seed=9)
        ec = run_on_random(p, {"N": 6}, engine="codegen", seed=9)
        assert np.array_equal(ei["A"], ec["A"])
        with pytest.raises(ValueError):
            run_on_random(p, {"N": 6}, engine="llvm")
