"""Section 6 language extensions: lowering and factor choice."""

import pytest

from repro.errors import TransformError
from repro.frontend import parse_procedure
from repro.ir.build import assign, block_do, do, in_do, ref
from repro.ir.expr import Call, Const, Min, Var
from repro.ir.stmt import ArrayDecl, Loop, Procedure
from repro.ir.visit import find_loops, loop_by_var
from repro.lang import choose_factor, lower_extensions
from repro.machine.cache import CacheConfig
from repro.machine.model import MachineModel, scaled_machine
from repro.runtime.validate import assert_equivalent

FIG11 = """
SUBROUTINE BLU(N)
  DOUBLE PRECISION A(N,N)
  BLOCK DO K = 1,N-1
    IN K DO KK
      DO I = KK+1,N
        A(I,KK) = A(I,KK)/A(KK,KK)
      ENDDO
      DO J = KK+1,LAST(K)
        DO I = KK+1,N
          A(I,J) = A(I,J) - A(I,KK) * A(KK,J)
        ENDDO
      ENDDO
    ENDDO
    DO J = LAST(K)+1,N
      DO I = K+1,N
        IN K DO KK = K,MIN(LAST(K),I-1)
          A(I,J) = A(I,J) - A(I,KK) * A(KK,J)
        ENDDO
      ENDDO
    ENDDO
  ENDDO
END
"""


class TestLowering:
    def test_fig11_lowers_to_block_lu(self):
        proc = parse_procedure(FIG11)
        lowered, factor = lower_extensions(proc, factor="KS")
        assert factor == Var("KS")
        assert "KS" in lowered.params
        k = loop_by_var(lowered.body, "K")
        assert k.step == Var("KS")
        # LAST(K) became MIN(K + KS - 1, N - 1)
        from repro.ir.pretty import to_fortran

        text = to_fortran(lowered)
        assert "MIN(K + KS - 1, N - 1)" in text
        # and semantics are exactly point LU
        from repro.algorithms import lu_point_ir

        for n, ks in ((13, 4), (12, 4), (9, 3)):
            assert_equivalent(lu_point_ir(), lowered, {"N": n, "KS": ks})

    def test_constant_factor(self):
        proc = parse_procedure(FIG11)
        lowered, factor = lower_extensions(proc, factor=4)
        assert factor == Const(4)
        from repro.algorithms import lu_point_ir

        assert_equivalent(lu_point_ir(), lowered, {"N": 11})

    def test_symbolic_default_factor(self):
        proc = parse_procedure(FIG11)
        lowered, factor = lower_extensions(proc)
        assert factor == Var("KS")

    def test_in_do_without_enclosing_block_rejected(self):
        p = Procedure(
            "t", ("N",), (ArrayDecl("A", (Var("N"),)),),
            (in_do("K", "KK", assign(ref("A", "KK"), 0.0)),),
        )
        with pytest.raises(TransformError):
            lower_extensions(p, factor=4)

    def test_last_outside_block_rejected(self):
        p = Procedure(
            "t", ("N",), (ArrayDecl("A", (Var("N"),)),),
            (
                block_do("K", 1, "N", assign(ref("A", "K"), 0.0)),
                assign("X", Call("LAST", (Var("K"),))),
            ),
        )
        with pytest.raises(TransformError):
            lower_extensions(p, factor=4)

    def test_no_extensions_is_identity(self, vecadd_proc):
        out, factor = lower_extensions(vecadd_proc, factor=4)
        assert out is vecadd_proc


class TestFactorChoice:
    def test_monotone_in_cache_size(self):
        proc = parse_procedure(FIG11)
        small = MachineModel("s", CacheConfig(1024, 32, 2))
        big = MachineModel("b", CacheConfig(64 * 1024, 32, 2))
        fs = choose_factor(proc, small, {"N": 64})
        fb = choose_factor(proc, big, {"N": 64})
        assert fb >= fs >= 2

    def test_end_to_end_machine_driven(self):
        proc = parse_procedure(FIG11)
        m = scaled_machine(4)
        lowered, factor = lower_extensions(proc, machine=m, sizes={"N": 48})
        assert isinstance(factor, Const) or isinstance(factor, int) or factor
        from repro.algorithms import lu_point_ir

        assert_equivalent(lu_point_ir(), lowered, {"N": 48})

    def test_sizes_required_for_machine_choice(self):
        proc = parse_procedure(FIG11)
        with pytest.raises(TransformError):
            lower_extensions(proc, machine=scaled_machine(4))
