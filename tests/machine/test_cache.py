"""Cache simulator unit tests."""

import pytest

from repro.errors import MachineError
from repro.machine.cache import Cache, CacheConfig, CacheStats


class TestConfig:
    def test_geometry_derivations(self):
        c = CacheConfig(size_bytes=1024, line_bytes=64, assoc=2)
        assert c.n_lines == 16
        assert c.n_sets == 8
        assert c.ways == 2

    def test_fully_associative(self):
        c = CacheConfig(size_bytes=1024, line_bytes=64, assoc=0)
        assert c.n_sets == 1
        assert c.ways == 16

    @pytest.mark.parametrize(
        "kw",
        [
            dict(size_bytes=1000, line_bytes=64),
            dict(size_bytes=1024, line_bytes=48),
            dict(size_bytes=64, line_bytes=128),
            dict(size_bytes=1024, line_bytes=64, assoc=5),
            dict(size_bytes=1024, line_bytes=64, assoc=32),
        ],
    )
    def test_invalid_geometry(self, kw):
        with pytest.raises(MachineError):
            CacheConfig(**kw)

    def test_describe(self):
        assert "4-way" in CacheConfig(2048, 32, 4).describe()
        assert "fully-assoc" in CacheConfig(2048, 32, 0).describe()


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = Cache(CacheConfig(256, 32, 2))
        assert c.access(0) is False
        assert c.access(8) is True  # same line
        assert c.access(32) is False  # next line
        assert c.stats.misses == 2 and c.stats.hits == 1

    def test_lru_within_set(self):
        # direct test of LRU: 2-way set; touch A, B, A, C -> B evicted
        c = Cache(CacheConfig(64, 32, 0))  # fully assoc, 2 lines
        A, B, C = 0, 32, 64
        c.access(A)
        c.access(B)
        c.access(A)  # A is MRU
        c.access(C)  # evicts B
        assert c.contains(A) and c.contains(C) and not c.contains(B)

    def test_writeback_counted_on_dirty_eviction(self):
        c = Cache(CacheConfig(64, 32, 0))  # 2 lines
        c.access(0, is_write=True)
        c.access(32)
        c.access(64)  # evicts dirty line 0
        assert c.stats.writebacks == 1
        c.access(96)  # evicts clean line 32
        assert c.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        c = Cache(CacheConfig(64, 32, 0))
        c.access(0)  # clean load
        c.access(0, is_write=True)  # dirty it
        c.access(32)
        c.access(64)  # evict line 0 -> writeback
        assert c.stats.writebacks == 1

    def test_conflict_misses_in_direct_mapped(self):
        c = Cache(CacheConfig(128, 32, 1))  # 4 sets, direct mapped
        # two addresses 128 bytes apart map to the same set
        for _ in range(4):
            c.access(0)
            c.access(128)
        assert c.stats.misses == 8  # ping-pong, no reuse survives

    def test_reset(self):
        c = Cache(CacheConfig(128, 32, 1))
        c.access(0, True)
        c.reset()
        assert c.stats.accesses == 0
        assert c.resident_lines == 0

    def test_read_write_counters(self):
        c = Cache(CacheConfig(128, 32, 1))
        c.access(0, True)
        c.access(0, False)
        assert (c.stats.writes, c.stats.reads) == (1, 1)


class TestStats:
    def test_miss_ratio_empty(self):
        assert CacheStats().miss_ratio == 0.0

    def test_addition(self):
        a = CacheStats(10, 2, 6, 4, 1)
        b = CacheStats(5, 1, 3, 2, 0)
        c = a + b
        assert (c.accesses, c.misses, c.writebacks) == (15, 3, 1)
        assert c.hits == 12

    def test_dict_round_trip(self):
        a = CacheStats(accesses=10, misses=2, reads=6, writes=4, writebacks=1)
        d = a.to_dict()
        # derived fields ride along for JSON readers...
        assert d["hits"] == 8
        assert d["miss_ratio"] == 0.2
        # ...and are ignored coming back: the stored counters round-trip
        assert CacheStats.from_dict(d) == a

    def test_from_dict_defaults_missing_fields(self):
        assert CacheStats.from_dict({}) == CacheStats()
        assert CacheStats.from_dict({"accesses": 3}).accesses == 3

    def test_to_dict_is_json_serializable(self):
        import json

        json.loads(json.dumps(CacheStats(1, 1, 1, 0, 0).to_dict()))


class TestTracerTlbWriteFlag:
    """The tracer must drive stores through the TLB as *writes* (a dirty
    translation's eviction is a page-table write-back)."""

    def _tracer(self):
        from repro.ir.expr import Var
        from repro.ir.stmt import ArrayDecl, Procedure
        from repro.machine.layout import Layout
        from repro.machine.tracer import CacheTracer

        proc = Procedure("p", ("N",), (ArrayDecl("A", (Var("N"),)),), ())
        layout = Layout.for_procedure(proc, {"N": 64}, line_bytes=32)
        cache = Cache(CacheConfig(256, 32, 2))
        tlb = Cache(CacheConfig(128, 128, 1))  # one 128-byte "page"
        return CacheTracer(layout, cache, tlb)

    def test_store_counts_as_tlb_write(self):
        t = self._tracer()
        t.access("A", (1,), True)
        t.access("A", (2,), False)
        assert t.tlb.stats.writes == 1
        assert t.tlb.stats.reads == 1

    def test_dirty_tlb_entry_writes_back_on_eviction(self):
        t = self._tracer()
        t.access("A", (1,), True)   # page 0 dirtied
        t.access("A", (17,), False)  # page 1 evicts page 0 (direct mapped)
        assert t.tlb_stats.writebacks == 1
