"""Array layout, machine models, tracer glue."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.ir.build import assign, do, ref
from repro.ir.expr import Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.machine.cache import Cache, CacheConfig
from repro.machine.layout import Layout
from repro.machine.model import CostModel, MachineModel, RS6000_540, scaled_machine
from repro.machine.tracer import CacheTracer, trace_procedure


class TestLayout:
    def test_column_major_addressing(self):
        lay = Layout({"A": (10, 10)}, itemsizes=8, line_bytes=64)
        base = lay.base_addr["A"]
        # consecutive rows in one column are adjacent
        assert lay.address("A", (2, 1)) - lay.address("A", (1, 1)) == 8
        # consecutive columns are a full column apart
        assert lay.address("A", (1, 2)) - lay.address("A", (1, 1)) == 80
        assert lay.address("A", (1, 1)) == base

    def test_arrays_line_separated(self):
        lay = Layout({"A": (4,), "B": (4,)}, itemsizes=8, line_bytes=64)
        assert lay.base_addr["B"] % 64 == 0
        assert lay.base_addr["B"] >= lay.base_addr["A"] + 32

    def test_rank_checked(self):
        lay = Layout({"A": (4, 4)})
        with pytest.raises(MachineError):
            lay.address("A", (1,))

    def test_bad_extent(self):
        with pytest.raises(MachineError):
            Layout({"A": (0,)})

    def test_for_procedure_respects_dtypes(self):
        p = Procedure(
            "t",
            ("N",),
            (ArrayDecl("A", (Var("N"),), "f4"), ArrayDecl("K", (Var("N"),), "i8")),
            (assign(ref("A", 1), 0.0),),
        )
        lay = Layout.for_procedure(p, {"N": 6}, line_bytes=32)
        assert lay.itemsize["A"] == 4
        assert lay.itemsize["K"] == 8
        assert lay.footprint_bytes("A") == 24

    def test_dtype_override(self):
        p = Procedure("t", ("N",), (ArrayDecl("A", (Var("N"),), "f8"),), (assign(ref("A", 1), 0.0),))
        lay = Layout.for_procedure(p, {"N": 4}, dtype_override="f4")
        assert lay.itemsize["A"] == 4


class TestCostModel:
    def test_cycles_composition(self):
        from repro.machine.cache import CacheStats

        cm = CostModel(ref_cost=1, miss_penalty=10, writeback_cost=2, tlb_penalty=5)
        st = CacheStats(accesses=100, misses=10, writebacks=3)
        assert cm.cycles(st) == 100 + 100 + 6
        tlb = CacheStats(accesses=100, misses=4)
        assert cm.cycles(st, tlb) == 206 + 20

    def test_seconds_uses_clock(self):
        from repro.machine.cache import CacheStats

        cm = CostModel(ref_cost=1, miss_penalty=0, writeback_cost=0, clock_mhz=1.0)
        assert cm.seconds(CacheStats(accesses=10**6)) == pytest.approx(1.0)


class TestMachines:
    def test_rs6000_geometry(self):
        assert RS6000_540.cache.size_bytes == 64 * 1024
        assert RS6000_540.cache.line_bytes == 128
        assert RS6000_540.tlb is not None
        assert RS6000_540.tlb.line_bytes == 4096

    def test_scaled_preserves_ratios(self):
        m = scaled_machine(4)
        assert m.cache.size_bytes == 4 * 1024
        assert m.cache.line_bytes == 32
        assert m.tlb is not None
        assert m.tlb.line_bytes == 1024

    def test_scale_one_is_identity(self):
        assert scaled_machine(1) is RS6000_540

    def test_bad_scale(self):
        with pytest.raises(MachineError):
            scaled_machine(0)

    def test_effective_fraction_validated(self):
        with pytest.raises(MachineError):
            MachineModel("x", CacheConfig(1024, 32, 2), effective_fraction=0.0)


class TestTracer:
    def _stream_proc(self):
        return Procedure(
            "s",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") + 1.0)),),
        )

    def test_stream_spatial_locality(self, tiny_machine):
        # 32B lines of f8 = 4 elements; streaming N=64 twice-touched
        # elements: one miss per line on the read, write hits
        tracer = trace_procedure(self._stream_proc(), {"N": 64}, tiny_machine)
        assert tracer.stats.accesses == 128
        assert tracer.stats.misses == 16

    def test_per_array_counters(self, tiny_machine):
        tracer = trace_procedure(self._stream_proc(), {"N": 8}, tiny_machine)
        assert tracer.per_array == {"A": 16}
        assert tracer.per_array_misses["A"] == 2

    def test_tlb_driven_when_configured(self):
        m = scaled_machine(4)
        tracer = trace_procedure(self._stream_proc(), {"N": 64}, m)
        assert tracer.tlb_stats is not None
        assert tracer.tlb_stats.accesses == tracer.stats.accesses

    def test_capacity_thrash_vs_fit(self, tiny_machine):
        # two sweeps over an array that fits vs one that doesn't
        p = Procedure(
            "s2",
            ("N",),
            (ArrayDecl("A", (Var("N"),)),),
            (
                do("R", 1, 2, do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") + 1.0))),
            ),
        )
        fits = trace_procedure(p, {"N": 32}, tiny_machine)  # 256B < 512B
        spills = trace_procedure(p, {"N": 512}, tiny_machine)  # 4KB >> 512B
        assert fits.stats.misses == 8  # second sweep entirely cached
        assert spills.stats.misses >= 2 * 512 / 4  # both sweeps miss per line
