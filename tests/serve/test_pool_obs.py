"""Cross-process observation: worker snapshots merged into the parent.

Runs a real 2-worker batch under an active observer and asserts the
tentpole invariants: worker-side pass spans appear on the parent
timeline in per-worker pid lanes, and worker counters fold into the
parent's so nothing a worker counted is lost.
"""

from __future__ import annotations

from repro.obs import core as obs_core
from repro.obs import export as obs_export
from repro.serve.jobs import JobSpec
from repro.serve.service import run_batch, validate_report

SPECS = [
    JobSpec(kind="derive", workload="matmul", timeout_s=120.0),
    JobSpec(kind="derive", workload="aconv", timeout_s=120.0),
]


def observed_batch():
    with obs_core.enabled() as o:
        report = run_batch(SPECS, workers=2, store=None)
    return o, report


class TestWorkerObservation:
    def test_worker_spans_reach_the_parent_timeline(self):
        o, report = observed_batch()
        assert all(j["status"] == "computed" for j in report["jobs"])
        lanes = {s.lane for s in o.spans if s.lane is not None}
        assert lanes  # at least one worker contributed spans
        assert lanes <= {"w0", "w1"}
        worker_passes = [
            s for s in o.spans if s.lane is not None and s.name.startswith("pass:")
        ]
        assert worker_passes  # the pipeline ran *inside* the workers
        roots = {
            s.name for s in o.spans if s.lane is not None and s.depth == 0
        }
        assert roots == {"job:derive:matmul", "job:derive:aconv"}

    def test_chrome_trace_has_one_pid_lane_per_worker(self):
        o, _ = observed_batch()
        trace = obs_export.chrome_trace(o)
        events = trace["traceEvents"]
        lanes = sorted({s.lane for s in o.spans if s.lane is not None})
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {1} | {i + 2 for i in range(len(lanes))}
        lane_names = {
            e["args"]["name"]
            for e in events
            if e["name"] == "process_name" and e["pid"] > 1
        }
        assert lane_names == {f"repro worker {lane}" for lane in lanes}

    def test_parent_counters_are_parent_plus_worker_sums(self):
        with obs_core.enabled() as o:
            from repro.serve.pool import WorkerPool

            with WorkerPool(workers=2, store=None) as pool:
                outcomes = pool.run(list(SPECS))
        snaps = [out.obs for out in outcomes]
        assert all(isinstance(s, dict) for s in snaps)
        worker_sums: dict = {}
        for snap in snaps:
            for name, n in snap["counters"].items():
                worker_sums[name] = worker_sums.get(name, 0) + n
        # everything a worker counted must appear, fully, in the parent
        assert worker_sums  # the workers did count something
        for name, total in worker_sums.items():
            assert o.counters.get(name, 0) >= total
        # pipeline counters only ever increment inside the workers, so
        # there the fold is an exact equality
        for name in [n for n in worker_sums if n.startswith("pipeline.")]:
            assert o.counters[name] == worker_sums[name]

    def test_outcome_snapshot_rides_the_result_queue(self):
        _, report = observed_batch()
        assert validate_report(report) == []

    def test_report_surfaces_per_worker_and_latency(self):
        _, report = observed_batch()
        per_worker = report["pool"]["per_worker"]
        assert [e["worker"] for e in per_worker] == [0, 1]
        assert sum(e["jobs"] for e in per_worker) == 2
        busy = [e for e in per_worker if e["jobs"]]
        assert all(e["busy_s"] > 0 for e in busy)
        assert all(0 <= e["utilization"] <= 1 for e in busy)
        wall = report["latency"]["wall_s"]
        assert wall["count"] == 2
        assert wall["min"] <= wall["p50"] <= wall["p95"] <= wall["max"]
        assert report["latency"]["queue_wait_s"]["count"] == 2

    def test_unobserved_run_ships_no_snapshots(self):
        report = run_batch(SPECS, workers=2, store=None)
        assert all(j["status"] == "computed" for j in report["jobs"])
        assert obs_core.current() is None
