"""JobSpec validation, store keys, and the worker-side executor."""

from __future__ import annotations

import os

import pytest

from repro.errors import PipelineError
from repro.serve.jobs import JobSpec, execute_job, job_key, result_fingerprint
from repro.serve.store import ArtifactStore


class TestJobSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PipelineError, match="unknown job kind"):
            JobSpec(kind="transmogrify")

    def test_passes_coerced_to_tuple(self):
        spec = JobSpec(workload="lu_nopivot", passes=["split", "block"])
        assert spec.passes == ("split", "block")

    def test_display_prefers_label(self):
        assert JobSpec(workload="conv", label="smoke").display == "smoke"
        assert (
            JobSpec(workload="conv", passes=("distribute",)).display
            == "derive:conv:distribute"
        )

    def test_dict_roundtrip(self):
        spec = JobSpec(
            kind="execute", workload="givens", passes=("givens_opt",),
            options={"unroll": 2}, check=True, timeout_s=60.0, label="x",
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_accepts_comma_passes(self):
        spec = JobSpec.from_dict({"workload": "lu_nopivot", "passes": "split, block"})
        assert spec.passes == ("split", "block")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(PipelineError, match="unknown job spec field"):
            JobSpec.from_dict({"workload": "conv", "retries": 3})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(PipelineError, match="must be an object"):
            JobSpec.from_dict(["conv"])


class TestJobKey:
    def digest(self, spec: JobSpec) -> str:
        return ArtifactStore(root="").digest(job_key(spec))

    def test_identical_specs_share_a_key(self):
        a = JobSpec(workload="matmul")
        b = JobSpec(workload="matmul", label="other-label")  # label is cosmetic
        assert job_key(a) == job_key(b)
        assert self.digest(a) == self.digest(b)

    def test_key_varies_with_recipe_check_and_kind(self):
        base = JobSpec(workload="lu_nopivot")
        assert job_key(base) != job_key(JobSpec(workload="lu_nopivot", passes=("split",)))
        assert job_key(base) != job_key(JobSpec(workload="lu_nopivot", check=True))
        assert job_key(base) != job_key(JobSpec(kind="execute", workload="lu_nopivot"))

    def test_probe_keys_on_options_only(self):
        a = JobSpec(kind="probe", options={"action": "ok", "value": 1})
        b = JobSpec(kind="probe", options={"value": 1, "action": "ok"})
        c = JobSpec(kind="probe", options={"action": "ok", "value": 2})
        assert job_key(a) == job_key(b)
        assert job_key(a) != job_key(c)

    def test_non_scalar_option_rejected(self):
        spec = JobSpec(kind="probe", options={"callback": {"nested": True}})
        with pytest.raises(PipelineError, match="JSON scalars"):
            job_key(spec)

    def test_unknown_workload_raises_terminal_error(self):
        with pytest.raises(PipelineError):
            job_key(JobSpec(workload="no_such_workload"))


class TestExecutor:
    def test_derive_returns_the_serializable_summary(self):
        value = execute_job(JobSpec(workload="matmul"))
        assert value["workload"] == "matmul"
        assert value["pass_executions"] == len(value["passes"]) > 0
        assert isinstance(value["fingerprint"], str)
        assert "DO" in value["ir"]
        assert value["elapsed_s"] >= 0
        assert result_fingerprint(value) == value["fingerprint"]

    def test_derive_is_deterministic_across_calls(self):
        a = execute_job(JobSpec(workload="matmul"))
        b = execute_job(JobSpec(workload="matmul"))
        assert a["fingerprint"] == b["fingerprint"]
        assert a["ir"] == b["ir"]

    def test_probe_ok(self):
        value = execute_job(JobSpec(kind="probe", options={"action": "ok"}))
        assert value["pid"] == os.getpid()

    def test_probe_raise_is_retryable(self):
        with pytest.raises(RuntimeError, match="probe raised"):
            execute_job(JobSpec(kind="probe", options={"action": "raise"}))

    def test_probe_terminal_is_a_repro_error(self):
        with pytest.raises(PipelineError, match="probe terminal"):
            execute_job(JobSpec(kind="probe", options={"action": "terminal"}))

    def test_probe_unknown_action_rejected(self):
        with pytest.raises(PipelineError, match="unknown probe action"):
            execute_job(JobSpec(kind="probe", options={"action": "lurk"}))

    def test_probe_flaky_fails_then_recovers(self, tmp_path):
        flag = str(tmp_path / "flag")
        spec = JobSpec(kind="probe", options={"action": "flaky", "flag_file": flag})
        with pytest.raises(RuntimeError, match="flag planted"):
            execute_job(spec)
        assert execute_job(spec)["probe"] == "recovered"

    def test_result_fingerprint_tolerates_junk(self):
        assert result_fingerprint(None) is None
        assert result_fingerprint({"fingerprint": 42}) is None
        assert result_fingerprint({}) is None
