"""``python -m repro.serve``: submit/batch/stats/gc, exit codes, artifacts."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import is_envelope, payload_of, validate_document
from repro.artifacts.registry import OBS_METRICS, SERVE_STORE
from repro.serve.cli import main
from repro.serve.service import validate_report
from repro.serve.store import ArtifactStore


@pytest.fixture
def store_dir(tmp_path) -> str:
    return str(tmp_path / "cache")


def submit(store_dir, *extra) -> int:
    return main(["submit", "matmul", "--workers", "1",
                 "--store-dir", store_dir, *extra])


class TestSubmit:
    def test_cold_then_warm_writes_a_valid_report(self, store_dir, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert submit(store_dir, "--out", str(out)) == 0
        env = json.loads(out.read_text())
        assert is_envelope(env)
        report = payload_of(env)
        assert validate_report(report) == []
        assert report["jobs"][0]["status"] == "computed"
        assert "report written to" in capsys.readouterr().out

        assert submit(store_dir, "--out", str(out)) == 0
        warm = payload_of(json.loads(out.read_text()))
        assert warm["jobs"][0]["status"] == "hit"
        assert warm["jobs"][0]["fingerprint"] == report["jobs"][0]["fingerprint"]

    def test_repeat_submissions_deduplicate(self, store_dir, capsys):
        assert submit(store_dir, "--repeat", "3", "--no-store") == 0
        text = capsys.readouterr().out
        assert "x3" in text  # one row, three submissions
        assert "1 job(s): 1 computed" in text

    def test_unknown_workload_is_a_usage_error(self, store_dir, capsys):
        assert main(["submit", "no_such_workload",
                     "--store-dir", store_dir]) == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_profile_written(self, store_dir, tmp_path):
        obs_path = tmp_path / "obs.json"
        assert submit(store_dir, "--no-store", "--obs", str(obs_path)) == 0
        env = json.loads(obs_path.read_text())
        assert is_envelope(env)
        assert payload_of(env)["schema"] == OBS_METRICS


class TestBatch:
    def write_specs(self, tmp_path, specs) -> str:
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(specs))
        return str(path)

    def test_probe_batch_runs_and_reports(self, tmp_path, store_dir, capsys):
        path = self.write_specs(
            tmp_path,
            {"jobs": [
                {"kind": "probe", "options": {"action": "ok", "value": 1},
                 "label": "p1"},
                {"kind": "probe", "options": {"action": "ok", "value": 2},
                 "label": "p2"},
            ]},
        )
        assert main(["batch", path, "--workers", "2",
                     "--store-dir", store_dir]) == 0
        assert "2 job(s): 2 computed" in capsys.readouterr().out

    def test_terminal_failure_exits_nonzero_without_killing_the_pool(
        self, tmp_path, store_dir, capsys
    ):
        path = self.write_specs(
            tmp_path,
            [
                {"kind": "probe", "options": {"action": "terminal"},
                 "max_retries": 0, "label": "doomed"},
                {"kind": "probe", "options": {"action": "ok"},
                 "label": "survivor"},
            ],
        )
        assert main(["batch", path, "--workers", "1",
                     "--store-dir", store_dir]) == 1
        text = capsys.readouterr().out
        assert "failed" in text and "computed" in text  # pool survived

    def test_malformed_batch_file_is_a_usage_error(self, tmp_path, store_dir, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["batch", str(path), "--store-dir", store_dir]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_empty_batch_rejected(self, tmp_path, store_dir, capsys):
        assert main(["batch", self.write_specs(tmp_path, []),
                     "--store-dir", store_dir]) == 2
        assert "non-empty list" in capsys.readouterr().err

    def test_unknown_spec_field_rejected(self, tmp_path, store_dir, capsys):
        path = self.write_specs(tmp_path, [{"workload": "conv", "retries": 1}])
        assert main(["batch", path, "--store-dir", store_dir]) == 2
        assert "unknown job spec field" in capsys.readouterr().err


class TestStatsAndGc:
    def seed(self, store_dir, n=3):
        store = ArtifactStore(store_dir)
        for i in range(n):
            store.put(("k", i), i)

    def test_stats_text_and_json(self, store_dir, capsys):
        self.seed(store_dir)
        assert main(["stats", "--store-dir", store_dir]) == 0
        assert "3 entries" in capsys.readouterr().out
        assert main(["stats", "--store-dir", store_dir, "--json"]) == 0
        env = json.loads(capsys.readouterr().out)
        assert is_envelope(env)
        assert validate_document(env) == []
        doc = payload_of(env)
        assert doc["schema"] == SERVE_STORE
        assert doc["op"] == "stats"
        assert doc["store"]["entries"] == 3
        assert doc["store"]["root"] == store_dir

    def test_gc_requires_a_limit(self, store_dir, capsys):
        assert main(["gc", "--store-dir", store_dir]) == 2
        assert "--max-entries" in capsys.readouterr().err

    def test_gc_prunes_and_reports(self, store_dir, capsys):
        self.seed(store_dir)
        assert main(["gc", "--store-dir", store_dir,
                     "--max-entries", "1", "--json"]) == 0
        env = json.loads(capsys.readouterr().out)
        assert is_envelope(env)
        assert validate_document(env) == []
        doc = payload_of(env)
        assert doc["op"] == "gc"
        assert doc["gc"] == {"removed": 2, "kept": 1}
        assert ArtifactStore(store_dir).stats()["entries"] == 1
