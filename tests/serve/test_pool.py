"""WorkerPool: scheduling, dedup, store short-circuit, fault injection.

Fault policy under test (the part CI must hold fixed):

- retryable failures (a raising job, a SIGKILLed worker, a timeout) are
  re-executed up to the retry budget and then surfaced as
  ``failed``/``timeout`` — the pool itself survives;
- :data:`repro.serve.jobs.TERMINAL_ERRORS` fail on the first attempt,
  no retry: a deterministic compiler verdict does not change on re-run;
- success on attempt > 1 reports ``retried``, with the stale error
  cleared.

Concurrency assertions use *sleeping* probe jobs, which overlap even on
the single-CPU CI runner; CPU-bound speedup is asserted nowhere here.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import PipelineError
from repro.serve.jobs import JobSpec
from repro.serve.pool import WorkerPool
from repro.serve.store import ArtifactStore


def probe(**options) -> JobSpec:
    options.setdefault("action", "ok")
    return JobSpec(kind="probe", options=options, timeout_s=10.0)


def run_one(spec: JobSpec, **pool_kw):
    pool_kw.setdefault("workers", 1)
    pool_kw.setdefault("backoff_s", 0.01)
    with WorkerPool(**pool_kw) as pool:
        return pool.run([spec])[0], pool


class TestScheduling:
    def test_ok_job_is_computed(self):
        out, _ = run_one(probe(value="v"))
        assert out.status == "computed"
        assert out.ok
        assert out.attempts == 1
        assert out.worker == 0
        assert out.value["probe"] == "v"
        assert out.error is None
        assert out.wall_s > 0

    def test_jobs_distribute_across_workers(self):
        specs = [probe(value=i, seconds=0.3) for i in range(3)]
        with WorkerPool(workers=3) as pool:
            t0 = time.perf_counter()
            outcomes = pool.run(specs)
            elapsed = time.perf_counter() - t0
        assert {o.status for o in outcomes} == {"computed"}
        assert {o.worker for o in outcomes} == {0, 1, 2}
        # sleeps overlap even on one CPU: far below the 0.9s serial time
        assert elapsed < 0.8
        assert pool.stats()["busy_s"] > 0.3

    def test_distinct_pids_per_worker(self):
        with WorkerPool(workers=2) as pool:
            outcomes = pool.run([probe(value=i, seconds=0.1) for i in range(2)])
        assert outcomes[0].value["pid"] != outcomes[1].value["pid"]

    def test_zero_workers_rejected(self):
        with pytest.raises(PipelineError, match="at least 1 worker"):
            WorkerPool(workers=0)

    def test_submit_after_close_rejected(self):
        pool = WorkerPool(workers=1)
        pool.close()
        with pytest.raises(PipelineError, match="closed"):
            pool.submit(probe())


class TestDedup:
    def test_identical_submissions_coalesce_to_one_computation(self):
        spec = probe(value="shared")
        with WorkerPool(workers=2) as pool:
            handles = [pool.submit(spec) for _ in range(5)]
            pool.drain()
        outcomes = {id(h.outcome) for h in handles}
        assert len(outcomes) == 1  # one shared outcome object
        out = handles[0].outcome
        assert out.status == "computed"
        assert out.submissions == 5
        assert pool.coalesced == 4
        assert len(pool._jobs) == 1  # exactly one computation ran

    def test_different_specs_do_not_coalesce(self):
        with WorkerPool(workers=1) as pool:
            pool.run([probe(value=1), probe(value=2)])
            assert pool.coalesced == 0
            assert len(pool._jobs) == 2


class TestCancellation:
    def test_queued_job_cancels_running_job_does_not(self):
        with WorkerPool(workers=1) as pool:
            keep = pool.submit(probe(value="keep"))
            drop = pool.submit(probe(value="drop"))
            assert drop.cancel() is True
            assert drop.cancel() is False  # idempotent: already resolved
            pool.drain()
        assert keep.outcome.status == "computed"
        assert drop.outcome.status == "cancelled"
        assert not drop.outcome.ok
        assert keep.cancel() is False  # finished jobs are untouchable


class TestFaultInjection:
    def test_raising_job_retried_then_failed(self):
        out, pool = run_one(probe(action="raise"), max_retries=2)
        assert out.status == "failed"
        assert out.attempts == 3  # first attempt + 2 retries
        assert "RuntimeError" in out.error
        assert not out.ok

    def test_terminal_error_fails_without_retry(self):
        out, _ = run_one(probe(action="terminal"), max_retries=5)
        assert out.status == "failed"
        assert out.attempts == 1  # deterministic verdict: no second chance
        assert "PipelineError" in out.error

    def test_flaky_job_recovers_as_retried(self, tmp_path):
        spec = probe(action="flaky", flag_file=str(tmp_path / "flag"))
        out, _ = run_one(spec, max_retries=2)
        assert out.status == "retried"
        assert out.ok
        assert out.attempts == 2
        assert out.error is None  # stale first-attempt error cleared
        assert out.value["probe"] == "recovered"

    def test_killed_worker_is_detected_retried_and_respawned(self):
        out, pool = run_one(probe(action="kill"), max_retries=1)
        assert out.status == "failed"
        assert out.attempts == 2
        assert "worker died mid-job" in out.error
        assert pool.respawns >= 2

    def test_timeout_kills_the_attempt_and_reports_timeout(self):
        spec = JobSpec(
            kind="probe",
            options={"action": "hang", "hang_s": 60.0},
            timeout_s=0.25,
        )
        out, pool = run_one(spec, max_retries=1)
        assert out.status == "timeout"
        assert out.attempts == 2
        assert "timed out after 0.25s" in out.error
        assert pool.respawns >= 1

    def test_spec_max_retries_overrides_the_pool_default(self):
        spec = JobSpec(kind="probe", options={"action": "raise"}, max_retries=0)
        out, _ = run_one(spec, max_retries=5)
        assert out.status == "failed"
        assert out.attempts == 1

    def test_pool_survives_a_failure_and_keeps_computing(self):
        with WorkerPool(workers=1, max_retries=0, backoff_s=0.01) as pool:
            bad, good = pool.run([probe(action="kill"), probe(value="after")])
        assert bad.status == "failed"
        assert good.status == "computed"
        assert good.value["probe"] == "after"


class TestStoreIntegration:
    def test_computed_value_is_published_and_short_circuits_next_pool(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        spec = JobSpec(workload="matmul", timeout_s=60.0)
        with WorkerPool(workers=1, store=store) as pool:
            cold = pool.run([spec])[0]
        assert cold.status == "computed"
        assert cold.stored is True

        fresh = ArtifactStore(str(tmp_path / "cache"))
        with WorkerPool(workers=1, store=fresh) as pool:
            warm = pool.run([spec])[0]
        assert warm.status == "hit"
        assert warm.attempts == 0  # resolved at submit: no worker involved
        assert warm.worker is None
        assert warm.value["fingerprint"] == cold.value["fingerprint"]
        assert warm.value["ir"] == cold.value["ir"]
        assert fresh.hits == 1

    def test_use_store_false_always_recomputes(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        spec = JobSpec(workload="matmul", use_store=False, timeout_s=60.0)
        for _ in range(2):
            with WorkerPool(workers=1, store=store) as pool:
                out = pool.run([spec])[0]
            assert out.status == "computed"
        assert store.stats()["entries"] == 0

    def test_failed_jobs_are_never_stored(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        with WorkerPool(workers=1, store=store, max_retries=0) as pool:
            out = pool.run([probe(action="terminal")])[0]
        assert out.status == "failed"
        assert store.stats()["entries"] == 0
