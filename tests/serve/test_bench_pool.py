"""``python -m repro.pipeline.bench --jobs N``: the pool-backed bench mode.

The workload set is monkeypatched down to the two cheapest entries so
the test exercises the full path — derive jobs through the pool, store
publish, warm-store short-circuit, byte-identical derived IR — in well
under a second of real derivation.
"""

from __future__ import annotations

import json

import pytest

from repro.artifacts import is_envelope, payload_of
from repro.pipeline import bench
from repro.pipeline.bench import SCHEMA


FAST = (
    ("matmul", "matmul", None, False),
    ("aconv", "aconv", None, False),
)


@pytest.fixture(autouse=True)
def fast_workloads(monkeypatch):
    monkeypatch.setattr(bench, "BENCH_WORKLOADS", FAST)


def test_cold_run_computes_and_publishes(tmp_path):
    doc = bench.run_bench_pool(2, store_dir=str(tmp_path / "cache"))
    assert doc["mode"] == "pool"
    assert doc["jobs"] == 2
    assert set(doc["workloads"]) == {"matmul", "aconv"}
    for data in doc["workloads"].values():
        assert data["status"] == "computed"
        assert data["pass_executions"] > 0
        assert data["fingerprint"]
        assert data["ir_sha256"]
    assert doc["store"]["entries"] == 2


def test_warm_store_short_circuits_with_identical_ir(tmp_path):
    root = str(tmp_path / "cache")
    cold = bench.run_bench_pool(1, store_dir=root)
    warm = bench.run_bench_pool(1, store_dir=root)  # fresh pool, warm disk
    for label in ("matmul", "aconv"):
        assert warm["workloads"][label]["status"] == "hit"
        # a hit replays the artifact: nothing executed this run...
        assert warm["workloads"][label]["pass_executions"] == 0
        # ...and the replayed IR is byte-identical to the cold derivation
        assert (
            warm["workloads"][label]["ir_sha256"]
            == cold["workloads"][label]["ir_sha256"]
        )
        assert (
            warm["workloads"][label]["fingerprint"]
            == cold["workloads"][label]["fingerprint"]
        )
    assert warm["store"]["hits"] == 2


def test_no_store_mode_reports_store_disabled(tmp_path):
    doc = bench.run_bench_pool(1, store_dir=str(tmp_path), use_store=False)
    assert doc["store"] == {"enabled": False}
    assert all(d["status"] == "computed" for d in doc["workloads"].values())


def test_main_pool_mode_writes_the_artifact(tmp_path, capsys):
    path = tmp_path / "BENCH_pipeline.json"
    rc = bench.main([str(path), "--jobs", "2",
                     "--store-dir", str(tmp_path / "cache")])
    assert rc == 0
    env = json.loads(path.read_text())
    assert is_envelope(env)
    doc = payload_of(env)
    assert doc["schema"] == SCHEMA
    assert doc["mode"] == "pool"
    out = capsys.readouterr().out
    assert "2 job(s) on 2 worker(s)" in out


def test_main_classic_mode_untouched_by_the_flag_default(tmp_path):
    # --jobs 0 (default) must still produce the in-process cold/warm shape
    path = tmp_path / "BENCH_pipeline.json"
    assert bench.main([str(path)]) == 0
    doc = payload_of(json.loads(path.read_text()))
    assert doc["mode"] == "inprocess"
    for data in doc["workloads"].values():
        assert {"cold", "warm", "warm_speedup"} <= set(data)
    assert "evictions" in doc["cache"]["passes"]
