"""ArtifactStore: addressing, durability, corruption, schema versioning.

The concurrency tests fork real writer processes against one store root
— they assert the atomic-publish discipline (a reader sees a complete
entry from *some* writer or a miss, never torn bytes), which is the
property the worker pool's cross-process reuse stands on.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from fractions import Fraction

import pytest

from repro.serve.store import (
    _CORRUPT,
    _MAGIC,
    SCHEMA_VERSION,
    ArtifactStore,
    canonical_key,
)

KEY = ("derive", "fp:abc", (("block", (("factor", 4),)),), ())


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(str(tmp_path / "cache"))


class TestAddressing:
    def test_roundtrip_hit(self, store):
        store.put(KEY, {"fingerprint": "abc", "ir": "DO I = 1, N"})
        hit, value = store.get(KEY)
        assert hit
        assert value == {"fingerprint": "abc", "ir": "DO I = 1, N"}
        assert (store.hits, store.misses, store.writes) == (1, 0, 1)

    def test_absent_key_is_a_miss(self, store):
        hit, value = store.get(KEY)
        assert (hit, value) == (False, None)
        assert store.misses == 1

    def test_stored_none_is_distinct_from_a_miss(self, store):
        store.put(KEY, None)
        assert store.get(KEY) == (True, None)

    def test_digest_ignores_dict_order(self, store):
        a = {"unroll": 2, "factor": 4}
        b = {"factor": 4, "unroll": 2}
        assert canonical_key(a) == canonical_key(b)
        assert store.digest(("k", a)) == store.digest(("k", b))

    def test_digest_distinguishes_values(self, store):
        assert store.digest(("k", 1)) != store.digest(("k", 2))

    def test_fraction_coefficients_canonicalize(self, store):
        # Assumptions.facts_key() carries Fraction Affine coefficients
        key = ("ctx", (("N", Fraction(1, 2)),))
        store.put(key, "v")
        assert store.get(key) == (True, "v")

    def test_uncanonicalizable_key_raises(self, store):
        with pytest.raises(TypeError, match="cannot canonicalize"):
            store.digest(("k", object()))

    def test_entry_lives_under_two_char_fanout(self, store):
        path = store.put(KEY, "v")
        digest = store.digest(KEY)
        assert path.parent.name == digest[:2]
        assert path.name == digest + ".art"

    def test_env_var_names_the_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-root"))
        assert ArtifactStore().root == tmp_path / "env-root"


class TestCorruption:
    def test_truncated_entry_is_a_miss_and_reaped(self, store):
        path = store.put(KEY, {"big": "x" * 4096})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # simulate a torn write
        assert store.get(KEY) == (False, None)
        assert store.corrupt == 1
        assert not path.exists()  # bad entry unlinked, cannot fail twice
        # a recompute-and-put makes the key serve hits again
        store.put(KEY, {"big": "y"})
        assert store.get(KEY) == (True, {"big": "y"})

    def test_garbage_file_is_a_miss(self, store):
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xffnot an artifact")
        assert store.get(KEY) == (False, None)
        assert store.corrupt == 1

    def test_bitflip_in_body_fails_the_checksum(self, store):
        path = store.put(KEY, {"v": 123456})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x40
        path.write_bytes(bytes(blob))
        assert store.get(KEY) == (False, None)
        assert store.corrupt == 1

    def test_magic_only_header_is_a_miss(self, store):
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_bytes(_MAGIC)
        assert store.get(KEY) == (False, None)

    def test_decode_rejects_an_entry_filed_under_the_wrong_key(self, store):
        blob = store.put(KEY, "v").read_bytes()
        assert store._decode(blob, ("some", "other", "key")) is _CORRUPT

    def test_unpicklable_body_is_corrupt_not_a_crash(self, store):
        path = store.put(KEY, "v")
        blob = path.read_bytes()
        body = b"\x80\x04not really a pickle"
        import hashlib

        checksum = hashlib.sha256(body).hexdigest().encode("ascii")
        path.write_bytes(_MAGIC + checksum + b"\n" + body)
        assert store.get(KEY) == (False, None)
        assert store.corrupt == 1


class TestSchemaVersioning:
    def test_bump_invalidates_without_touching_files(self, store):
        store.put(KEY, "old")
        bumped = ArtifactStore(str(store.root), schema_version=SCHEMA_VERSION + 1)
        assert bumped.get(KEY) == (False, None)  # orphaned, not corrupted
        assert bumped.corrupt == 0
        assert store.get(KEY) == (True, "old")  # v1 reader still fine
        bumped.put(KEY, "new")
        assert bumped.get(KEY) == (True, "new")
        assert store.stats()["entries"] == 2  # both generations on disk

    def test_version_skew_on_the_same_path_reads_corrupt(self, store):
        # even if digests collided across versions, _decode re-checks the
        # version recorded inside the entry
        path = store.put(KEY, "old")
        bumped = ArtifactStore(str(store.root), schema_version=SCHEMA_VERSION + 1)
        assert bumped._decode(path.read_bytes(), KEY) is _CORRUPT


class TestMaintenance:
    def put_n(self, store, n):
        for i in range(n):
            store.put(("k", i), i)
            time.sleep(0.01)  # distinct mtimes for age ordering

    def test_stats_reports_counters_and_disk(self, store):
        store.put(KEY, "v")
        store.get(KEY)
        store.get(("absent",))
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1
        assert stats["corrupt"] == 0
        assert stats["entries"] == 1
        assert stats["bytes"] > len(_MAGIC)
        assert stats["schema_version"] == SCHEMA_VERSION

    def test_gc_by_count_evicts_oldest_first(self, store):
        self.put_n(store, 4)
        summary = store.gc(max_entries=2)
        assert summary == {"removed": 2, "kept": 2}
        assert store.get(("k", 0)) == (False, None)
        assert store.get(("k", 3)) == (True, 3)

    def test_gc_by_age(self, store):
        self.put_n(store, 2)
        time.sleep(0.05)
        store.put(("young",), "y")
        summary = store.gc(max_age_s=0.04)
        assert summary["removed"] == 2
        assert store.get(("young",)) == (True, "y")

    def test_gc_without_limits_is_a_no_op(self, store):
        self.put_n(store, 2)
        assert store.gc() == {"removed": 0, "kept": 2}

    def test_clear_removes_everything(self, store):
        self.put_n(store, 3)
        assert store.clear() == 3
        assert store.stats()["entries"] == 0

    def test_tmp_files_are_invisible_to_entries(self, store):
        store.put(KEY, "v")
        junk = store.path_for(KEY).parent / ".tmp-leftover.art"
        junk.write_bytes(b"partial")
        assert store.stats()["entries"] == 1


class TestScan:
    def test_scan_yields_canonical_key_and_value(self, store):
        store.put(KEY, {"ir": "DO I = 1, N"})
        store.put(("other", 1), "v2")
        entries = dict(store.scan())
        assert entries[canonical_key(KEY)] == {"ir": "DO I = 1, N"}
        assert entries[canonical_key(("other", 1))] == "v2"

    def test_scan_skips_corrupt_without_unlinking(self, store):
        store.put(KEY, "good")
        store.put(("bad",), "junk")
        bad_path = store.path_for(("bad",))
        blob = bytearray(bad_path.read_bytes())
        blob[-1] ^= 0xFF
        bad_path.write_bytes(bytes(blob))
        entries = list(store.scan())
        assert [v for _, v in entries] == ["good"]
        assert store.corrupt == 1
        assert bad_path.exists()  # scan never reaps — get() does

    def test_scan_skips_other_schema_versions(self, store):
        store.put(KEY, "v")
        bumped = ArtifactStore(str(store.root),
                               schema_version=SCHEMA_VERSION + 1)
        assert list(bumped.scan()) == []


class TestObsIntegration:
    def test_counters_and_spans_land_in_an_enabled_obs(self, store):
        from repro.obs import core as obs_core

        with obs_core.enabled() as o:
            store.put(KEY, "v")
            store.get(KEY)           # hit
            store.get(("absent",))   # miss
        assert o.counters["store.writes"] == 1
        assert o.counters["store.hits"] == 1
        assert o.counters["store.misses"] == 1
        names = {s.name for s in o.spans}
        assert {"store:get", "store:put"} <= names
        hits = [s.args.get("hit") for s in o.spans if s.name == "store:get"]
        assert sorted(hits) == [False, True]

    def test_disabled_obs_is_a_no_op(self, store):
        store.put(KEY, "v")
        assert store.get(KEY) == (True, "v")  # no observer, no crash


# --- concurrency -----------------------------------------------------------

def _hammer_writer(root: str, seed: int, rounds: int) -> None:
    store = ArtifactStore(root)
    for i in range(rounds):
        store.put(KEY, {"writer": seed, "round": i, "pad": "x" * 2048})


def test_concurrent_writers_never_produce_a_torn_read(tmp_path):
    """N writers race on one key while the parent reads continuously:
    every read must be a miss or a complete entry from some writer."""
    root = str(tmp_path / "cache")
    ctx = multiprocessing.get_context("fork")
    writers = [
        ctx.Process(target=_hammer_writer, args=(root, seed, 25))
        for seed in range(3)
    ]
    for w in writers:
        w.start()
    reader = ArtifactStore(root)
    observed = 0
    while any(w.is_alive() for w in writers):
        hit, value = reader.get(KEY)
        if hit:
            observed += 1
            assert set(value) == {"writer", "round", "pad"}
            assert value["writer"] in (0, 1, 2)
    for w in writers:
        w.join()
        assert w.exitcode == 0
    assert reader.corrupt == 0  # atomicity: no torn entry was ever visible
    assert observed > 0
    # last-writer-wins: the surviving entry is one writer's final state
    hit, value = reader.get(KEY)
    assert hit and value["round"] == 24


def test_interrupted_put_leaves_no_partial_entry(tmp_path, monkeypatch):
    """A crash mid-serialization must not publish anything."""
    store = ArtifactStore(str(tmp_path / "cache"))

    def explode(*a, **k):
        raise OSError("disk full")

    real_replace = os.replace
    monkeypatch.setattr(os, "replace", explode)
    with pytest.raises(OSError):
        store.put(KEY, "v")
    monkeypatch.setattr(os, "replace", real_replace)
    assert store.get(KEY) == (False, None)
    assert store.corrupt == 0
    assert store.stats()["entries"] == 0  # and no temp debris counted
