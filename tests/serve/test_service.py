"""run_batch and the ``repro.serve/1`` report: shape, validation, obs."""

from __future__ import annotations

import json

from repro.artifacts import is_envelope, payload_of, validate_document
from repro.artifacts.validate import RULE_STALE_VERSION
from repro.obs import core as obs_core
from repro.serve.jobs import JobSpec
from repro.serve.service import (
    SCHEMA,
    run_batch,
    validate_report,
    write_report,
)
from repro.serve.store import ArtifactStore


def probe(**options) -> JobSpec:
    options.setdefault("action", "ok")
    return JobSpec(kind="probe", options=options, timeout_s=10.0)


class TestRunBatch:
    def test_report_is_valid_and_complete(self):
        report = run_batch(
            [probe(value=1), probe(value=2)],
            workers=2,
            meta={"tool": "test", "build": 7},
        )
        assert validate_report(report) == []
        assert report["schema"] == SCHEMA
        assert report["meta"] == {"tool": "test", "build": "7"}  # stringified
        assert report["summary"]["computed"] == 2
        assert report["summary"]["ok"] == report["summary"]["total"] == 2
        assert report["pool"]["workers"] == 2
        assert report["pool"]["utilization"] is not None
        assert report["store"] == {"enabled": False}
        for job in report["jobs"]:
            assert job["status"] == "computed"
            assert job["wall_s"] > 0
            assert job["result"]["probe"] in (1, 2)

    def test_one_row_per_deduplicated_job(self):
        spec = probe(value="same")
        report = run_batch([spec, spec, spec], workers=1)
        assert validate_report(report) == []
        assert len(report["jobs"]) == 1
        assert report["jobs"][0]["submissions"] == 3
        assert report["pool"]["coalesced"] == 2

    def test_failures_carry_their_error_and_flip_ok(self):
        report = run_batch(
            [probe(action="terminal"), probe(value="fine")],
            workers=1,
            max_retries=0,
        )
        assert validate_report(report) == []
        assert report["summary"]["failed"] == 1
        assert report["summary"]["ok"] == 1
        by_status = {j["status"]: j for j in report["jobs"]}
        assert "PipelineError" in by_status["failed"]["error"]
        assert by_status["computed"]["error"] is None

    def test_store_run_reports_worker_writes_and_then_hits(self, tmp_path):
        spec = JobSpec(workload="matmul", timeout_s=60.0)
        cold = run_batch([spec], workers=1, store=ArtifactStore(str(tmp_path)))
        assert cold["jobs"][0]["status"] == "computed"
        assert cold["jobs"][0]["stored"] is True
        # the write happened in the worker; the report folds it in
        assert cold["store"]["writes"] == 1
        assert cold["store"]["entries"] == 1

        warm = run_batch([spec], workers=1, store=ArtifactStore(str(tmp_path)))
        assert warm["jobs"][0]["status"] == "hit"
        assert warm["jobs"][0]["attempts"] == 0
        assert warm["store"]["hits"] == 1
        assert warm["store"]["writes"] == 0
        assert (
            warm["jobs"][0]["fingerprint"] == cold["jobs"][0]["fingerprint"]
        )

    def test_result_rows_elide_the_ir_payload(self, tmp_path):
        spec = JobSpec(workload="matmul", timeout_s=60.0)
        report = run_batch([spec], workers=1, store=ArtifactStore(str(tmp_path)))
        row = report["jobs"][0]
        assert "ir" not in row["result"]  # reports stay skimmable
        assert row["fingerprint"]  # ...but the identity survives

    def test_include_results_false_drops_payloads(self):
        report = run_batch([probe(value=1)], workers=1, include_results=False)
        assert report["jobs"][0]["result"] is None
        assert validate_report(report) == []

    def test_obs_counters_mirror_the_batch(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        spec = JobSpec(workload="matmul", timeout_s=60.0)
        with obs_core.enabled() as o:
            run_batch([spec], workers=1, store=store)
            run_batch([spec], workers=1, store=ArtifactStore(str(tmp_path)))
        assert o.counters["serve.job.computed"] == 1
        assert o.counters["serve.job.hit"] == 1
        assert o.counters["serve.store.miss"] == 1
        assert o.counters["serve.store.hit"] == 1
        assert o.histograms["serve.pool.utilization"].count == 2
        assert any(s.cat == "serve.job" for s in o.spans)


class TestValidateReport:
    def good(self) -> dict:
        return run_batch([probe(value="v")], workers=1)

    def test_accepts_the_real_thing(self):
        assert validate_report(self.good()) == []

    def test_rejects_non_objects(self):
        assert validate_report([]) == ["document is not an object"]

    def test_rejects_wrong_schema(self):
        # schema identity is the envelope layer's job now
        doc = self.good()
        doc["schema"] = "repro.serve/99"
        problems = validate_document(doc)
        assert [p.rule for p in problems] == [RULE_STALE_VERSION]

    def test_rejects_missing_sections(self):
        doc = self.good()
        del doc["pool"]
        del doc["jobs"]
        problems = validate_report(doc)
        assert any("'pool'" in p for p in problems)
        assert any("'jobs'" in p for p in problems)

    def test_rejects_unknown_status(self):
        doc = self.good()
        doc["jobs"][0]["status"] = "vanished"
        assert any("unknown status" in p for p in validate_report(doc))

    def test_rejects_failure_without_error(self):
        doc = self.good()
        doc["jobs"][0]["status"] = "failed"
        doc["jobs"][0]["error"] = None
        problems = validate_report(doc)
        assert any("carries no error" in p for p in problems)

    def test_rejects_summary_mismatch(self):
        doc = self.good()
        doc["summary"]["computed"] = 5
        doc["summary"]["total"] = 9
        problems = validate_report(doc)
        assert any("summary.total" in p for p in problems)
        assert any("'computed'" in p for p in problems)

    def test_rejects_missing_job_fields(self):
        doc = self.good()
        del doc["jobs"][0]["wall_s"]
        assert any("missing field 'wall_s'" in p for p in validate_report(doc))


def test_write_report_roundtrips(tmp_path):
    report = run_batch([probe(value="v")], workers=1)
    path = tmp_path / "report.json"
    write_report(str(path), report)
    doc = json.loads(path.read_text())
    assert is_envelope(doc)
    assert payload_of(doc) == json.loads(json.dumps(report))
    assert path.read_text().endswith("\n")
