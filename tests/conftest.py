"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.build import assign, do, ref
from repro.ir.expr import Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.machine.cache import CacheConfig
from repro.machine.model import CostModel, MachineModel


@pytest.fixture
def tiny_machine() -> MachineModel:
    """A deliberately small cache so tiny problems overflow it."""
    return MachineModel(
        name="tiny",
        cache=CacheConfig(size_bytes=512, line_bytes=32, assoc=2),
        cost=CostModel(ref_cost=1.0, miss_penalty=18.0, writeback_cost=4.0, clock_mhz=30.0),
    )


@pytest.fixture
def vecadd_proc() -> Procedure:
    """The Sec. 2.3 running example: DO J / DO I / A(I) += B(J)."""
    return Procedure(
        "vecadd",
        ("N", "M"),
        (ArrayDecl("A", (Var("M"),)), ArrayDecl("B", (Var("N"),))),
        (
            do(
                "J",
                1,
                "N",
                do("I", 1, "M", assign(ref("A", "I"), ref("A", "I") + ref("B", "J"))),
            ),
        ),
    )


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
