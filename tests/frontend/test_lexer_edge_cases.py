"""Lexer edge cases beyond the happy path."""

import pytest

from repro.errors import ParseError
from repro.frontend.lexer import tokenize


class TestNumbers:
    def test_float_forms(self):
        toks = tokenize("X = 1.5 + .25 + 2. + 1E3 + 1.5D-2")[0].tokens
        kinds = [t.kind for t in toks]
        assert kinds.count("FLOAT") == 5

    def test_integer_vs_label(self):
        lines = tokenize("10 X = 10")
        assert lines[0].label == "10"
        assert lines[0].tokens[-1].kind == "INT"

    def test_lone_integer_line_is_not_a_label(self):
        # a line that is ONLY a number keeps the number as a token
        lines = tokenize("42 CONTINUE")
        assert lines[0].label == "42"


class TestOperators:
    def test_power_vs_mul(self):
        toks = tokenize("X = A ** 2 * B")[0].tokens
        texts = [t.text for t in toks]
        assert "**" in texts and "*" in texts

    def test_modern_relationals(self):
        toks = tokenize("X = A <= B")[0].tokens
        assert any(t.text == "<=" for t in toks)

    def test_dotops_case_insensitive(self):
        toks = tokenize("X = a .gt. b .And. c .LT. d")[0].tokens
        dots = [t.text for t in toks if t.kind == "DOTOP"]
        assert dots == [".GT.", ".AND.", ".LT."]


class TestLines:
    def test_blank_and_comment_lines_skipped(self):
        lines = tokenize("\n\nC comment\n  ! only comment\nX = 1\n\n")
        assert len(lines) == 1

    def test_multi_line_continuation(self):
        lines = tokenize("X = 1 + &\n 2 + &\n 3")
        assert len(lines) == 1
        assert sum(1 for t in lines[0].tokens if t.kind == "INT") == 3

    def test_line_numbers_tracked(self):
        lines = tokenize("A = 1\n\nB = 2")
        assert lines[0].number == 1
        assert lines[1].number == 3

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            tokenize("X = 1\nY = $bad")
        assert "line 2" in str(err.value)
