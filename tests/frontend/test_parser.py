"""Fortran-subset front end: lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import parse_procedure, parse_statements, tokenize
from repro.ir.expr import BinOp, Call, Compare, Const, Max, Min, Not, Var
from repro.ir.stmt import Assign, BlockLoop, If, InLoop, Loop
from repro.ir.visit import strip_labels
from repro.symbolic.simplify import simplify_procedure


class TestLexer:
    def test_labels_and_case(self):
        lines = tokenize("10  a(i) = B(I) + 1\n")
        assert lines[0].label == "10"
        assert lines[0].tokens[0].text == "A"

    def test_comments(self):
        lines = tokenize("C full line comment\nX = 1 ! trailing\n* another\n")
        assert len(lines) == 1
        assert [t.text for t in lines[0].tokens] == ["X", "=", "1"]

    def test_continuation(self):
        lines = tokenize("X = 1 + &\n    2\n")
        assert len(lines) == 1
        assert [t.text for t in lines[0].tokens][-1] == "2"

    def test_dotops_and_floats(self):
        lines = tokenize("IF (X .GE. 1.5E-2) Y = .TRUE.\n")
        kinds = [t.kind for t in lines[0].tokens]
        assert "DOTOP" in kinds and "FLOAT" in kinds

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("X = 1 @ 2")


class TestStatements:
    def test_assignment(self):
        (s,) = parse_statements("X = Y + 2*Z")
        assert s == Assign(Var("X"), Var("Y") + Const(2) * Var("Z"))

    def test_array_assignment_requires_declaration(self):
        (s,) = parse_statements("A(I) = 0.0", arrays=["A"])
        assert s.target.array == "A"
        with pytest.raises(ParseError):
            parse_statements("A(I) = 0.0")

    def test_structured_do(self):
        (s,) = parse_statements("DO I = 1, N, 2\nX = I\nENDDO")
        assert isinstance(s, Loop) and s.step == Const(2)

    def test_precedence(self):
        (s,) = parse_statements("X = A + B * C ** 2")
        assert s.value == Var("A") + Var("B") * BinOp("**", Var("C"), Const(2))

    def test_unary_minus_binds_loosely(self):
        # Fortran: -A * B parses as -(A*B)
        (s,) = parse_statements("X = -A * B")
        assert s.value == BinOp("-", Const(0), BinOp("*", Var("A"), Var("B")))

    def test_min_max_intrinsics(self):
        (s,) = parse_statements("X = MIN(A, B, 3) + MAX(C, D)")
        assert isinstance(s.value.left, Min)
        assert isinstance(s.value.right, Max)
        assert len(s.value.left.args) == 3

    def test_known_intrinsic_call(self):
        (s,) = parse_statements("X = DSQRT(Y)")
        assert s.value == Call("DSQRT", (Var("Y"),))

    def test_unknown_call_rejected(self):
        with pytest.raises(ParseError):
            parse_statements("X = FOO(Y)")

    def test_if_then_else(self):
        (s,) = parse_statements(
            "IF (X .GT. 0 .AND. Y .LT. 2) THEN\nZ = 1\nELSE\nZ = 2\nENDIF"
        )
        assert isinstance(s, If) and s.els

    def test_one_line_if(self):
        (s,) = parse_statements("IF (X .EQ. 0) Y = 1")
        assert isinstance(s, If) and s.then == (Assign(Var("Y"), Const(1)),)

    def test_labeled_do_with_continue(self):
        (s,) = parse_statements("DO 10 I = 1, N\nX = I\n10 CONTINUE")
        assert isinstance(s, Loop) and s.label == "10"

    def test_shared_terminator(self):
        (s,) = parse_statements("DO 10 J = 1, N\nDO 10 I = 1, N\n10 X = I + J")
        inner = s.body[0]
        assert isinstance(inner, Loop)
        assert isinstance(inner.body[0], Assign)

    def test_goto_guard_normalized(self):
        (s,) = parse_statements(
            "DO 20 K = 1, N\nIF (B(K) .EQ. 0.0) GOTO 20\nX = K\n20 CONTINUE",
            arrays=["B"],
        )
        guard = s.body[0]
        assert isinstance(guard, If)
        assert guard.cond == Compare("ne", __import__("repro.ir.expr", fromlist=["ArrayRef"]).ArrayRef("B", (Var("K"),)), Const(0.0))

    def test_goto_elsewhere_rejected(self):
        with pytest.raises(ParseError):
            parse_statements("DO 20 K = 1, N\nIF (X .EQ. 0) GOTO 99\n20 CONTINUE")


class TestProcedures:
    def test_declarations_and_params(self):
        p = parse_procedure(
            """
            SUBROUTINE F(N, M)
              DOUBLE PRECISION A(N,M), TAU
              REAL B(N)
              INTEGER KLB(N)
              A(1,1) = B(1)
            END
            """
        )
        assert p.name == "F"
        assert p.params == ("N", "M")
        assert p.array("A").dtype == "f8"
        assert p.array("B").dtype == "f4"
        assert p.array("KLB").dtype == "i8"

    def test_paper_lu_matches_builder(self):
        from repro.algorithms import lu_point_ir

        src = """
        SUBROUTINE LU(N)
          DOUBLE PRECISION A(N,N)
          DO 10 K = 1,N-1
            DO 20 I = K+1,N
        20    A(I,K) = A(I,K) / A(K,K)
            DO 10 J = K+1,N
              DO 10 I = K+1,N
        10      A(I,J) = A(I,J) - A(I,K) * A(K,J)
        END
        """
        parsed = simplify_procedure(strip_labels(parse_procedure(src)))
        assert parsed.body == simplify_procedure(lu_point_ir()).body

    def test_paper_matmul_matches_builder(self):
        from repro.algorithms import matmul_guarded_ir

        src = """
        SUBROUTINE MM(N)
          REAL A(N,N), B(N,N), C(N,N)
          DO 20 J = 1,N
            DO 20 K = 1,N
              IF (B(K,J) .EQ. 0.0) GOTO 20
              DO 10 I = 1,N
        10      C(I,J) = C(I,J) + A(I,K) * B(K,J)
        20 CONTINUE
        END
        """
        parsed = strip_labels(parse_procedure(src))
        assert parsed.body == matmul_guarded_ir().body


class TestExtensions:
    def test_block_do_and_in_do(self):
        p = parse_procedure(
            """
            SUBROUTINE B(N)
              DOUBLE PRECISION A(N)
              BLOCK DO K = 1, N
                IN K DO KK
                  A(KK) = A(KK) + 1.0
                ENDDO
                IN K DO KK = K, LAST(K)
                  A(KK) = A(KK) * 2.0
                ENDDO
              ENDDO
            END
            """
        )
        block = p.body[0]
        assert isinstance(block, BlockLoop)
        first, second = block.body
        assert isinstance(first, InLoop) and first.lo is None
        assert isinstance(second, InLoop) and second.lo is not None
        assert second.hi == Call("LAST", (Var("K"),))


class TestParallelDo:
    def test_parallel_do(self):
        from repro.ir.stmt import ParallelLoop

        (s,) = parse_statements("PARALLEL DO I = 1, N\nX = I\nENDDO")
        assert isinstance(s, ParallelLoop)
        assert s.kind == "parallel"
        assert s.var == "I"

    def test_parallel_reduction_do_with_step(self):
        from repro.ir.stmt import ParallelLoop

        (s,) = parse_statements(
            "PARALLEL REDUCTION DO K = 2, N, 2\nX = K\nENDDO")
        assert isinstance(s, ParallelLoop)
        assert s.kind == "reduction"
        assert s.step == Const(2)

    def test_parallel_without_do_rejected(self):
        with pytest.raises(ParseError, match="expected DO"):
            parse_statements("PARALLEL I = 1, N\nX = I\nENDDO")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_statements("PARALLEL DO I = 1, N EXTRA\nX = I\nENDDO")

    def test_nested_markers(self):
        from repro.ir.stmt import ParallelLoop

        (s,) = parse_statements(
            "PARALLEL DO I = 1, N\nDO J = 1, N\nX = I\nENDDO\nENDDO")
        assert isinstance(s, ParallelLoop)
        (inner,) = s.body
        assert isinstance(inner, Loop)
        assert not isinstance(inner, ParallelLoop)
