"""The artifact envelope: digesting, wrapping, the legacy reader."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import (
    canonical_json,
    envelope,
    is_envelope,
    load_file,
    payload_digest,
    payload_of,
    schema_id_of,
    split_id,
    write_file,
)
from repro.artifacts.registry import PERF_BASELINE
from repro.errors import ArtifactError


def baseline_payload() -> dict:
    return {"schema": PERF_BASELINE, "metrics": {"pass:block.wall_s": 0.5}}


class TestDigest:
    def test_digest_is_stable_across_key_order(self):
        a = {"schema": PERF_BASELINE, "metrics": {"x": 1.0, "y": 2.0}}
        b = {"metrics": {"y": 2.0, "x": 1.0}, "schema": PERF_BASELINE}
        assert payload_digest(a) == payload_digest(b)
        assert canonical_json(a) == canonical_json(b)

    def test_digest_changes_with_content(self):
        a = baseline_payload()
        b = dict(a, metrics={"pass:block.wall_s": 0.6})
        assert payload_digest(a) != payload_digest(b)

    def test_enveloping_is_deterministic_given_payload(self):
        a = envelope(baseline_payload(), producer="t", created_s=0.0)
        b = envelope(baseline_payload(), producer="t", created_s=0.0)
        assert a == b


class TestEnvelope:
    def test_schema_defaults_to_inner_field(self):
        env = envelope(baseline_payload(), producer="t")
        assert env["schema"] == "repro.perf.baseline"
        assert env["schema_version"] == 1
        assert env["digest"] == payload_digest(baseline_payload())
        assert env["payload"] == baseline_payload()

    def test_payload_without_schema_needs_explicit_id(self):
        with pytest.raises(ArtifactError):
            envelope({"metrics": {}})
        env = envelope({"metrics": {}}, schema=PERF_BASELINE)
        assert schema_id_of(env) == PERF_BASELINE

    def test_non_object_payload_rejected(self):
        with pytest.raises(ArtifactError):
            envelope([1, 2, 3])

    def test_split_id(self):
        assert split_id("repro.obs/1") == ("repro.obs", 1)
        for bad in ("repro.obs", "repro.obs/", "/1", "repro.obs/x"):
            with pytest.raises(ArtifactError):
                split_id(bad)


class TestLegacyReader:
    def test_bare_document_passes_through(self):
        bare = baseline_payload()
        assert not is_envelope(bare)
        assert payload_of(bare) is bare
        assert schema_id_of(bare) == PERF_BASELINE

    def test_enveloped_document_unwraps(self):
        env = envelope(baseline_payload(), producer="t")
        assert is_envelope(env)
        assert payload_of(env) == baseline_payload()
        assert schema_id_of(env) == PERF_BASELINE

    def test_schemaless_document_has_no_id(self):
        assert schema_id_of({"metrics": {}}) is None
        assert schema_id_of(7) is None


class TestFileRoundTrip:
    def test_write_then_load_is_identical(self, tmp_path):
        env = envelope(baseline_payload(), producer="t")
        path = tmp_path / "a.json"
        write_file(str(path), env)
        assert load_file(str(path)) == env
        assert path.read_text().endswith("\n")

    def test_unreadable_and_malformed_files_raise(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ArtifactError):
            load_file(str(bad))
        arr = tmp_path / "arr.json"
        arr.write_text(json.dumps([1, 2]))
        with pytest.raises(ArtifactError):
            load_file(str(arr))
