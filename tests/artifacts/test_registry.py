"""The schema registry: builtin kinds, lazy hooks, validate_document."""

from __future__ import annotations

import pytest

from repro.artifacts import envelope, registry, require_valid, validate_document
from repro.artifacts.registry import (
    CHECK_REPORT,
    DAEMON_STATUS,
    MATRIX_REPORT,
    OBS_METRICS,
    OBS_SNAPSHOT,
    PAR_REPORT,
    PERF_BASELINE,
    PERF_GATE,
    PIPELINE_BENCH,
    PIPELINE_TRACE,
    SERVE_LOAD,
    SERVE_REPORT,
    SERVE_STORE,
)
from repro.artifacts.validate import (
    RULE_DIGEST,
    RULE_MALFORMED,
    RULE_PAYLOAD,
    RULE_SCHEMA_MISMATCH,
    RULE_STALE_VERSION,
    RULE_UNKNOWN_SCHEMA,
)
from repro.errors import ArtifactError

ALL_IDS = (
    PIPELINE_TRACE, PIPELINE_BENCH, OBS_METRICS, OBS_SNAPSHOT,
    CHECK_REPORT, SERVE_REPORT, MATRIX_REPORT, PERF_GATE, PERF_BASELINE,
    PAR_REPORT, DAEMON_STATUS, SERVE_LOAD, SERVE_STORE,
)


def baseline_payload() -> dict:
    return {"schema": PERF_BASELINE, "metrics": {"pass:block.wall_s": 0.5}}


class TestBuiltinKinds:
    def test_every_subsystem_schema_is_registered(self):
        assert set(registry.known_ids()) == set(ALL_IDS)

    def test_every_kind_has_a_resolvable_validator(self):
        for schema_id in ALL_IDS:
            kind = registry.get(schema_id)
            assert callable(kind.validate_payload), schema_id

    def test_flatten_hooks_resolve_where_registered(self):
        # snapshots and gate verdicts have no perf timeline; all other
        # kinds must be ingestible by ``repro.perf record``
        no_timeline = {OBS_SNAPSHOT, PERF_GATE}
        for schema_id in ALL_IDS:
            kind = registry.get(schema_id)
            if schema_id in no_timeline:
                assert kind.flatten is None, schema_id
            else:
                assert callable(kind.flatten), schema_id

    def test_lookup_unknown_is_none_but_get_raises(self):
        assert registry.lookup("repro.nope/1") is None
        with pytest.raises(ArtifactError, match="known:"):
            registry.get("repro.nope/1")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ArtifactError, match="already registered"):
            registry.register(PERF_BASELINE)

    def test_versions_of(self):
        assert registry.versions_of("repro.perf.baseline") == [1]
        assert registry.versions_of("repro.nope") == []


class TestValidateDocument:
    def test_valid_envelope_passes(self):
        env = envelope(baseline_payload(), producer="t")
        assert validate_document(env) == []
        assert require_valid(env) is env

    def test_legacy_bare_document_accepted(self):
        assert validate_document(baseline_payload()) == []

    def test_unknown_schema_rule(self):
        # payload without an inner schema field: only the envelope id counts
        env = envelope({"metrics": {}}, schema=PERF_BASELINE, producer="t")
        env["schema"] = "repro.nope"
        problems = validate_document(env)
        assert [p.rule for p in problems] == [RULE_UNKNOWN_SCHEMA]

    def test_stale_version_rule(self):
        env = envelope({"metrics": {}}, schema=PERF_BASELINE, producer="t")
        env["schema_version"] = 99
        problems = validate_document(env)
        assert [p.rule for p in problems] == [RULE_STALE_VERSION]
        assert "repro.perf.baseline/1" in problems[0].message

    def test_tampered_envelope_id_also_breaks_inner_agreement(self):
        env = envelope(baseline_payload(), producer="t")
        env["schema_version"] = 99
        rules = {p.rule for p in validate_document(env)}
        assert rules == {RULE_SCHEMA_MISMATCH, RULE_STALE_VERSION}

    def test_digest_mismatch_rule(self):
        env = envelope(baseline_payload(), producer="t")
        env["payload"]["metrics"]["pass:block.wall_s"] = 0.9
        assert RULE_DIGEST in {p.rule for p in validate_document(env)}

    def test_inner_schema_disagreement_rule(self):
        payload = dict(baseline_payload(), schema=PERF_GATE)
        env = envelope(payload, schema=PERF_BASELINE, producer="t")
        rules = {p.rule for p in validate_document(env)}
        assert RULE_SCHEMA_MISMATCH in rules

    def test_invalid_payload_rule(self):
        env = envelope({"schema": PERF_BASELINE, "metrics": {"x": "slow"}},
                       producer="t")
        problems = validate_document(env)
        assert [p.rule for p in problems] == [RULE_PAYLOAD]

    def test_malformed_envelope_rule(self):
        env = envelope(baseline_payload(), producer="t")
        del env["producer"]
        env["timing"] = None
        rules = [p.rule for p in validate_document(env)]
        assert rules and set(rules) == {RULE_MALFORMED}

    def test_require_valid_carries_structured_problems(self):
        env = envelope({"metrics": {}}, schema=PERF_BASELINE, producer="t")
        env["schema_version"] = 99
        with pytest.raises(ArtifactError) as exc:
            require_valid(env)
        assert [p.rule for p in exc.value.problems] == [RULE_STALE_VERSION]
