"""``python -m repro.artifacts`` validate/ls/cat on files and the store."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import envelope, publish, put_artifact, write_file
from repro.artifacts.cli import main
from repro.artifacts.registry import PERF_BASELINE
from repro.artifacts.validate import RULE_STALE_VERSION
from repro.serve.store import ArtifactStore


def baseline_payload(wall=0.5) -> dict:
    return {"schema": PERF_BASELINE, "metrics": {"pass:block.wall_s": wall}}


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "base.json"
    publish(str(path), baseline_payload(), producer="t")
    return str(path)


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "cache")


class TestValidate:
    def test_valid_file_exits_0(self, good_file, capsys):
        assert main(["validate", good_file]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_file_exits_1_with_rule_id(self, tmp_path, capsys):
        env = envelope(baseline_payload(), producer="t")
        env["schema_version"] = 99
        path = tmp_path / "stale.json"
        write_file(str(path), env)
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and RULE_STALE_VERSION in out

    def test_json_report(self, good_file, capsys):
        assert main(["validate", good_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["valid"] is True
        assert doc["documents"][0]["path"] == good_file

    def test_no_input_is_usage_error(self, capsys):
        assert main(["validate"]) == 2

    def test_unreadable_file_is_usage_error(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "missing.json")]) == 2

    def test_store_contents_validate(self, store_dir, capsys):
        store = ArtifactStore(store_dir)
        put_artifact(store, envelope(baseline_payload(), producer="t"))
        assert main(["validate", "--store", "--store-dir", store_dir]) == 0
        assert "store:" in capsys.readouterr().out


class TestLs:
    def test_named_file(self, good_file, capsys):
        assert main(["ls", good_file]) == 0
        assert "repro.perf.baseline/1" in capsys.readouterr().out

    def test_store_inventory(self, store_dir, capsys):
        store = ArtifactStore(store_dir)
        put_artifact(store, envelope(baseline_payload(), producer="t"))
        assert main(["ls", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "repro.perf.baseline/1" in out

    def test_empty_store(self, store_dir, capsys):
        assert main(["ls", "--store-dir", store_dir]) == 0
        assert "no artifacts" in capsys.readouterr().out


class TestCat:
    def test_file_payload_unwraps(self, good_file, capsys):
        assert main(["cat", good_file, "--payload"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == baseline_payload()

    def test_store_digest_prefix(self, store_dir, capsys):
        store = ArtifactStore(store_dir)
        env = envelope(baseline_payload(), producer="t")
        put_artifact(store, env)
        assert main(["cat", env["digest"][:10],
                     "--store-dir", store_dir]) == 0
        assert json.loads(capsys.readouterr().out) == env

    def test_unknown_target_exits_2(self, store_dir, capsys):
        assert main(["cat", "feedf00d", "--store-dir", store_dir]) == 2
        assert "no artifact matches" in capsys.readouterr().err
