"""The store sink: content addressing, request pointers, publish()."""

from __future__ import annotations

import pytest

from repro.artifacts import (
    envelope,
    find_artifact,
    get_artifact,
    get_for_request,
    list_artifacts,
    payload_of,
    publish,
    put_artifact,
)
from repro.artifacts.registry import PERF_BASELINE
from repro.errors import ArtifactError
from repro.serve.store import ArtifactStore


def baseline_payload(wall=0.5) -> dict:
    return {"schema": PERF_BASELINE, "metrics": {"pass:block.wall_s": wall}}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


class TestContentAddressing:
    def test_put_then_get_roundtrips(self, store):
        env = envelope(baseline_payload(), producer="t")
        digest = put_artifact(store, env)
        assert digest == env["digest"]
        assert get_artifact(store, PERF_BASELINE, digest) == env

    def test_same_payload_twice_is_one_entry(self, store):
        put_artifact(store, envelope(baseline_payload(), producer="a"))
        put_artifact(store, envelope(baseline_payload(), producer="b"))
        assert len(list_artifacts(store)) == 1

    def test_bare_documents_are_refused(self, store):
        with pytest.raises(ArtifactError):
            put_artifact(store, baseline_payload())

    def test_missing_artifact_is_none(self, store):
        assert get_artifact(store, PERF_BASELINE, "ff" * 32) is None


class TestRequestPointers:
    def test_request_pointer_resolves_to_the_envelope(self, store):
        env = envelope(baseline_payload(), producer="t")
        request = ("profile", "lu_nopivot", (("N", 16),))
        put_artifact(store, env, request=request)
        assert get_for_request(store, PERF_BASELINE, request) == env
        assert get_for_request(store, PERF_BASELINE, ("other",)) is None

    def test_pointers_are_not_listed_as_content(self, store):
        env = envelope(baseline_payload(), producer="t")
        put_artifact(store, env, request=("r",))
        rows = list_artifacts(store)
        assert len(rows) == 1
        assert rows[0]["digest"] == env["digest"]
        assert rows[0]["schema"] == PERF_BASELINE


class TestFindArtifact:
    def test_prefix_match(self, store):
        env = envelope(baseline_payload(), producer="t")
        put_artifact(store, env)
        assert find_artifact(store, env["digest"][:8]) == env
        assert find_artifact(store, "ffff") is None

    def test_ambiguous_prefix_raises(self, store):
        put_artifact(store, envelope(baseline_payload(0.5), producer="t"))
        put_artifact(store, envelope(baseline_payload(0.6), producer="t"))
        with pytest.raises(ArtifactError, match="ambiguous"):
            find_artifact(store, "")


class TestPublish:
    def test_publish_envelopes_writes_and_lands(self, store, tmp_path):
        path = tmp_path / "base.json"
        env = publish(str(path), baseline_payload(), producer="t",
                      store=store, request=("r",))
        assert payload_of(env) == baseline_payload()
        assert path.exists()
        assert get_artifact(store, PERF_BASELINE, env["digest"]) == env
        assert get_for_request(store, PERF_BASELINE, ("r",)) == env

    def test_publish_validates_by_default(self, tmp_path):
        bad = {"schema": PERF_BASELINE, "metrics": {"x": "slow"}}
        with pytest.raises(ArtifactError):
            publish(str(tmp_path / "bad.json"), bad, producer="t")
        assert not (tmp_path / "bad.json").exists()

    def test_publish_without_path_or_store_just_envelopes(self):
        env = publish(None, baseline_payload(), producer="t")
        assert env["producer"] == "t"
