"""repro.perf.db: the sqlite run history."""

from __future__ import annotations

import pytest

from repro.errors import PerfError
from repro.perf.db import PerfDB
from tests.perf.test_ingest import pipeline_doc


@pytest.fixture
def db(tmp_path):
    with PerfDB(str(tmp_path / "perf.db")) as handle:
        yield handle


class TestRecord:
    def test_record_returns_the_run_row(self, db):
        run = db.record(pipeline_doc(), label="main", git_sha="abc1234",
                        source="t.json", created_s=100.0)
        assert run["id"] == 1
        assert run["label"] == "main"
        assert run["artifact_schema"] == "repro.pipeline/1"
        assert run["git_sha"] == "abc1234"
        assert run["created_s"] == 100.0
        assert run["metrics"] == len(db.metrics_for(1)) > 0

    def test_same_artifact_records_same_digest(self, db):
        a = db.record(pipeline_doc(), created_s=1.0)
        b = db.record(pipeline_doc(), created_s=2.0)
        assert a["artifact_digest"] == b["artifact_digest"]
        assert db.metrics_for(a["id"]) == db.metrics_for(b["id"])

    def test_zero_metric_artifact_is_refused(self, db):
        with pytest.raises(PerfError):
            db.record({"schema": "repro.pipeline/1", "spans": "nope"})

    def test_unknown_schema_is_refused(self, db):
        with pytest.raises(PerfError):
            db.record({"schema": "what/0"})


class TestSelectors:
    def test_id_label_latest(self, db):
        db.record(pipeline_doc(block_wall=0.1), label="main", created_s=1.0)
        db.record(pipeline_doc(block_wall=0.2), label="work", created_s=2.0)
        db.record(pipeline_doc(block_wall=0.3), label="main", created_s=3.0)
        assert db.run(2)["label"] == "work"
        assert db.run("2")["label"] == "work"
        assert db.run("latest")["id"] == 3
        assert db.run("latest~1")["id"] == 2
        assert db.run("latest~2")["id"] == 1
        # a label resolves to its most recent run
        assert db.run("main")["id"] == 3

    def test_missing_selector_raises(self, db):
        with pytest.raises(PerfError):
            db.run("nosuch")
        with pytest.raises(PerfError):
            db.run(99)
        with pytest.raises(PerfError):
            db.run("latest~bogus")


class TestHistory:
    def test_history_is_oldest_first(self, db):
        for i, wall in enumerate((0.1, 0.2, 0.3)):
            db.record(pipeline_doc(block_wall=wall), created_s=float(i))
        points = db.history("pass:block.wall_s")
        assert [p["value"] for p in points] == [0.1, 0.2, 0.3]
        assert [p["run_id"] for p in points] == [1, 2, 3]

    def test_history_limit_keeps_the_newest(self, db):
        for i in range(5):
            db.record(pipeline_doc(block_wall=float(i)), created_s=float(i))
        points = db.history("pass:block.wall_s", limit=2)
        assert [p["value"] for p in points] == [3.0, 4.0]

    def test_metric_names_like(self, db):
        db.record(pipeline_doc(), created_s=1.0)
        names = db.metric_names(like="pass:%")
        assert "pass:block.wall_s" in names
        assert "elapsed_s" not in names

    def test_runs_listing(self, db):
        db.record(pipeline_doc(), label="a", created_s=1.0)
        db.record(pipeline_doc(), label="b", created_s=2.0)
        assert [r["label"] for r in db.runs()] == ["a", "b"]
        assert [r["label"] for r in db.runs(limit=1)] == ["b"]


class TestDurability:
    def test_reopen_keeps_runs(self, tmp_path):
        path = str(tmp_path / "perf.db")
        with PerfDB(path) as db:
            db.record(pipeline_doc(), label="main", created_s=1.0)
        with PerfDB(path) as db:
            assert db.run("main")["id"] == 1

    def test_non_database_file_is_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"this is not sqlite at all, not even close....")
        with pytest.raises(PerfError):
            PerfDB(str(path))
