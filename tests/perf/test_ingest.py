"""repro.perf.ingest: artifact flattening and content digests."""

from __future__ import annotations

import pytest

from repro.errors import PerfError
from repro.perf import ingest


def pipeline_doc(block_wall=0.5, block_size=154):
    return {
        "schema": "repro.pipeline/1",
        "algorithm": "lu_nopivot",
        "procedure": "lu_point",
        "passes": ["split", "block"],
        "spans": [
            {"index": 0, "pass": "split", "status": "applied",
             "wall_s": 0.01, "cached": False,
             "ir_size_before": 50, "ir_size_after": 50},
            {"index": 1, "pass": "block", "status": "applied",
             "wall_s": block_wall, "cached": False,
             "ir_size_before": 50, "ir_size_after": block_size},
        ],
        "cache": {"dependence": {"hits": 1, "misses": 2, "hit_rate": 1 / 3,
                                 "entries": 2, "evictions": 0}},
        "verify_enabled": False,
        "elapsed_s": 0.01 + block_wall,
    }


class TestPipelineFlatten:
    def test_per_pass_metrics(self):
        m = ingest.flatten(pipeline_doc())
        assert m["pass:block.wall_s"] == 0.5
        assert m["pass:block.ir_size_after"] == 154.0
        assert m["pass:block.ir_growth"] == 104.0
        assert m["pass:split.ir_growth"] == 0.0
        assert m["passes.count"] == 2.0
        assert m["elapsed_s"] == 0.51
        assert m["analysis_cache.dependence.hits"] == 1.0
        assert m["analysis_cache.dependence.hit_rate"] == pytest.approx(1 / 3)

    def test_duplicate_pass_names_get_suffixes(self):
        doc = pipeline_doc()
        doc["spans"].append(dict(doc["spans"][1], index=2, wall_s=0.7))
        m = ingest.flatten(doc)
        assert m["pass:block.wall_s"] == 0.5
        assert m["pass:block.wall_s#2"] == 0.7

    def test_null_and_nonfinite_values_are_skipped(self):
        doc = pipeline_doc()
        doc["spans"][0]["wall_s"] = None
        doc["spans"][1]["wall_s"] = float("inf")
        m = ingest.flatten(doc)
        assert "pass:split.wall_s" not in m
        assert "pass:block.wall_s" not in m
        assert m["pass:block.ir_size_after"] == 154.0


class TestOtherSchemas:
    def test_obs_profile(self):
        doc = {
            "schema": "repro.obs/1",
            "meta": {},
            "counters": {"dependence.queries": 41},
            "histograms": {"lat_s": {"count": 3, "total": 6.0, "min": 1.0,
                                     "max": 3.0, "mean": 2.0, "p50": 2.0,
                                     "p95": 2.9, "p99": 2.98}},
            "spans": {"pass:block": {"count": 1, "total_s": 0.5,
                                     "max_s": 0.5}},
            "analysis_cache": {},
            "machine": {"cache": {"accesses": 100, "misses": 7},
                        "tlb": None},
        }
        m = ingest.flatten(doc)
        assert m["counter:dependence.queries"] == 41.0
        assert m["hist:lat_s.p95"] == 2.9
        assert m["span:pass:block.total_s"] == 0.5
        assert m["machine.cache.misses"] == 7.0

    def test_serve_report(self):
        doc = {
            "schema": "repro.serve/1",
            "jobs": [{"label": "derive:matmul", "wall_s": 0.02,
                      "queue_wait_s": 0.001, "status": "computed"}],
            "summary": {"computed": 1, "total": 1, "ok": 1},
            "pool": {"busy_s": 0.02, "utilization": 0.4},
            "latency": {"wall_s": {"count": 1, "mean": 0.02, "p50": 0.02,
                                   "p95": 0.02, "p99": 0.02, "max": 0.02,
                                   "min": 0.02, "total": 0.02}},
            "elapsed_s": 0.05,
        }
        m = ingest.flatten(doc)
        assert m["job:derive:matmul.wall_s"] == 0.02
        assert m["jobs.computed"] == 1.0
        assert m["pool.utilization"] == 0.4
        assert m["latency.wall_s.p99"] == 0.02

    def test_matrix_report(self):
        doc = {
            "schema": "repro.matrix/1",
            "run": {"elapsed_s": 3.0, "total": 2, "computed": 2},
            "summary": {"cells": 2, "ok": 2, "failed": 0,
                        "speedup": {"count": 2, "min": 1.0, "p25": 1.1,
                                    "p50": 1.2, "p75": 1.3, "max": 1.4,
                                    "mean": 1.2}},
            "rows": [
                {"workload": "lu_nopivot", "recipe": "blocked", "n": 64,
                 "b": 16, "status": "computed", "modeled_s": 0.9,
                 "speedup": 1.4, "miss_ratio": 0.1, "wall_s": 1.5},
                {"workload": "lu_nopivot", "recipe": "blocked", "n": 64,
                 "b": 32, "status": "skipped"},
            ],
        }
        m = ingest.flatten(doc)
        assert m["summary.speedup.p50"] == 1.2
        assert m["cell:lu_nopivot:blocked:n64:b16.speedup"] == 1.4
        assert "cell:lu_nopivot:blocked:n64:b32.speedup" not in m

    def test_bench_both_modes(self):
        classic = {
            "schema": "repro.pipeline.bench/1",
            "mode": "inprocess",
            "workloads": {"matmul": {"cold": {"elapsed_s": 0.2},
                                     "warm": {"elapsed_s": 0.01},
                                     "warm_speedup": 20.0}},
            "cache": {},
        }
        pool = {
            "schema": "repro.pipeline.bench/1",
            "mode": "pool",
            "workloads": {"matmul": {"wall_s": 0.2, "pass_executions": 3}},
            "pool": {"busy_s": 0.2},
            "elapsed_s": 0.3,
        }
        mc = ingest.flatten(classic)
        assert mc["bench:matmul.cold_s"] == 0.2
        assert mc["bench:matmul.warm_s"] == 0.01
        mp = ingest.flatten(pool)
        assert mp["bench:matmul.wall_s"] == 0.2
        assert mp["elapsed_s"] == 0.3


class TestDispatch:
    def test_unknown_schema_raises(self):
        with pytest.raises(PerfError):
            ingest.flatten({"schema": "repro.unknown/9"})
        with pytest.raises(PerfError):
            ingest.detect_schema({})

    def test_digest_is_content_addressed(self):
        a, b = pipeline_doc(), pipeline_doc()
        assert ingest.artifact_digest(a) == ingest.artifact_digest(b)
        b["spans"][1]["wall_s"] = 0.6
        assert ingest.artifact_digest(a) != ingest.artifact_digest(b)
