"""``python -m repro.perf``: the record/diff/trend/gate workflow end to
end, including the exit-code contract CI relies on."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import is_envelope, payload_of
from repro.artifacts.registry import PERF_BASELINE, PERF_GATE
from repro.perf import cli
from tests.perf.test_ingest import pipeline_doc


@pytest.fixture
def env(tmp_path):
    """A scratch database plus two artifacts: a reference and a variant
    with one synthetically slowed pass."""
    db = str(tmp_path / "perf.db")
    ref = str(tmp_path / "ref.json")
    slow = str(tmp_path / "slow.json")
    with open(ref, "w") as fh:
        json.dump(pipeline_doc(block_wall=0.5), fh)
    with open(slow, "w") as fh:
        json.dump(pipeline_doc(block_wall=1.5), fh)
    return {"db": db, "ref": ref, "slow": slow, "tmp": tmp_path}


def run(args):
    return cli.main(args)


class TestRecordAndQuery:
    def test_record_runs_diff_trend(self, env, capsys):
        assert run(["record", env["ref"], "--label", "main",
                    "--db", env["db"]]) == 0
        assert run(["record", env["slow"], "--label", "work",
                    "--db", env["db"]]) == 0
        assert run(["runs", "--db", env["db"]]) == 0
        assert run(["diff", "main", "work", "--db", env["db"],
                    "--metrics", "pass:*"]) == 0
        out = capsys.readouterr().out
        assert "pass:block.wall_s" in out
        assert "+200.00%" in out
        assert run(["trend", "pass:block.wall_s", "--db", env["db"]]) == 0
        out = capsys.readouterr().out
        assert "2 point(s)" in out

    def test_trend_unknown_metric_exits_2(self, env):
        run(["record", env["ref"], "--db", env["db"]])
        assert run(["trend", "no.such.metric", "--db", env["db"]]) == 2

    def test_record_unreadable_artifact_exits_2(self, env):
        assert run(["record", str(env["tmp"] / "absent.json"),
                    "--db", env["db"]]) == 2

    def test_baseline_out_writes_committable_file(self, env):
        base = str(env["tmp"] / "base.json")
        assert run(["record", env["ref"], "--db", env["db"],
                    "--baseline-out", base]) == 0
        env_doc = json.load(open(base))
        assert is_envelope(env_doc)
        doc = payload_of(env_doc)
        assert doc["schema"] == PERF_BASELINE
        assert doc["metrics"]["pass:block.wall_s"] == 0.5


class TestGateExitCodes:
    def test_identical_artifacts_exit_0(self, env):
        run(["record", env["ref"], "--label", "main", "--db", env["db"]])
        assert run(["gate", env["ref"], "--baseline", "main",
                    "--db", env["db"], "--metrics", "pass:*",
                    "--threshold", "0"]) == 0

    def test_synthetically_slowed_pass_exits_1(self, env):
        run(["record", env["ref"], "--label", "main", "--db", env["db"]])
        assert run(["gate", env["slow"], "--baseline", "main",
                    "--db", env["db"], "--metrics", "pass:*.wall_s",
                    "--threshold", "25"]) == 1

    def test_missing_baseline_exits_3(self, env):
        assert run(["gate", env["ref"], "--baseline", "nosuch",
                    "--db", env["db"]]) == 3

    def test_no_tracked_baseline_metrics_exits_3(self, env):
        base = str(env["tmp"] / "base.json")
        run(["record", env["ref"], "--db", env["db"],
             "--baseline-out", base])
        assert run(["gate", env["ref"], "--baseline-file", base,
                    "--metrics", "zzz:*", "--db", env["db"]]) == 3

    def test_usage_errors_exit_2(self, env):
        # neither or both baseline sources
        assert run(["gate", env["ref"], "--db", env["db"]]) == 2
        base = str(env["tmp"] / "base.json")
        run(["record", env["ref"], "--label", "main", "--db", env["db"],
             "--baseline-out", base])
        assert run(["gate", env["ref"], "--baseline", "main",
                    "--baseline-file", base, "--db", env["db"]]) == 2

    def test_gate_against_baseline_file(self, env):
        base = str(env["tmp"] / "base.json")
        run(["record", env["ref"], "--db", env["db"],
             "--baseline-out", base])
        assert run(["gate", env["ref"], "--baseline-file", base,
                    "--metrics", "pass:*.ir_size_after",
                    "--threshold", "0", "--db", env["db"]]) == 0
        # grow the IR: a deterministic metric regresses at threshold 0
        grown = str(env["tmp"] / "grown.json")
        with open(grown, "w") as fh:
            json.dump(pipeline_doc(block_size=200), fh)
        assert run(["gate", grown, "--baseline-file", base,
                    "--metrics", "pass:*.ir_size_after",
                    "--threshold", "0", "--db", env["db"]]) == 1

    def test_gate_record_also_records(self, env):
        base = str(env["tmp"] / "base.json")
        run(["record", env["ref"], "--db", env["db"],
             "--baseline-out", base])
        run(["gate", env["ref"], "--baseline-file", base,
             "--record", "--label", "gated", "--db", env["db"],
             "--metrics", "pass:*"])
        assert run(["runs", "--db", env["db"]]) == 0

    def test_gate_json_report(self, env, capsys):
        run(["record", env["ref"], "--label", "main", "--db", env["db"]])
        out_path = str(env["tmp"] / "gate.json")
        run(["gate", env["slow"], "--baseline", "main", "--db", env["db"],
             "--metrics", "pass:*.wall_s", "--threshold", "25",
             "--json", out_path])
        doc = payload_of(json.load(open(out_path)))
        assert doc["schema"] == PERF_GATE
        assert doc["verdict"] == "regressed"
        assert doc["exit_code"] == 1
        assert any(r["verdict"] == "regressed" for r in doc["rows"])
