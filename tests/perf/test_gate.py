"""repro.perf.gate: verdicts, thresholds, baseline files."""

from __future__ import annotations

import pytest

from repro.errors import PerfError
from repro.perf import gate


class TestCompare:
    def test_identical_metrics_are_within_noise(self):
        m = {"pass:block.wall_s": 0.5, "pass:block.ir_size_after": 154.0}
        result = gate.compare(m, dict(m), threshold_pct=0.0)
        assert result["verdict"] == "within-noise"
        assert result["exit_code"] == gate.EXIT_OK
        assert all(r["verdict"] == "within-noise" for r in result["rows"])

    def test_increase_beyond_threshold_regresses(self):
        result = gate.compare({"m": 1.2}, {"m": 1.0}, threshold_pct=10.0)
        assert result["verdict"] == "regressed"
        assert result["exit_code"] == gate.EXIT_REGRESSED
        (row,) = result["rows"]
        assert row["pct"] == pytest.approx(20.0)

    def test_decrease_beyond_threshold_improves(self):
        result = gate.compare({"m": 0.5}, {"m": 1.0}, threshold_pct=10.0)
        assert result["verdict"] == "improved"
        assert result["exit_code"] == gate.EXIT_OK

    def test_inside_the_noise_band_either_way(self):
        result = gate.compare({"a": 1.05, "b": 0.95}, {"a": 1.0, "b": 1.0},
                              threshold_pct=10.0)
        assert result["verdict"] == "within-noise"

    def test_zero_threshold_flags_any_change(self):
        result = gate.compare({"m": 154.0}, {"m": 153.0}, threshold_pct=0.0)
        assert result["verdict"] == "regressed"

    def test_growth_from_zero_baseline_regresses(self):
        result = gate.compare({"m": 0.1}, {"m": 0.0}, threshold_pct=50.0)
        assert result["verdict"] == "regressed"
        (row,) = result["rows"]
        assert row["pct"] is None  # infinite percentage is reported as null

    def test_zero_to_zero_is_within_noise(self):
        result = gate.compare({"m": 0.0}, {"m": 0.0}, threshold_pct=0.0)
        assert result["verdict"] == "within-noise"

    def test_metric_absent_from_baseline(self):
        result = gate.compare({"new": 1.0, "old": 1.0}, {"old": 1.0})
        assert result["counts"]["missing-baseline"] == 1
        # one tracked metric *did* have a baseline and passed: still ok
        assert result["verdict"] == "within-noise"

    def test_all_tracked_metrics_missing_baseline(self):
        result = gate.compare({"new": 1.0}, {})
        assert result["verdict"] == "missing-baseline"
        assert result["exit_code"] == gate.EXIT_NO_BASELINE

    def test_nothing_tracked_is_missing_baseline(self):
        result = gate.compare({"m": 1.0}, {"m": 1.0}, patterns=("zzz:*",))
        assert result["verdict"] == "missing-baseline"

    def test_patterns_select_the_tracked_set(self):
        current = {"pass:block.wall_s": 9.9, "pass:block.ir_size_after": 154.0}
        baseline = {"pass:block.wall_s": 0.1, "pass:block.ir_size_after": 154.0}
        result = gate.compare(current, baseline,
                              patterns=("pass:*.ir_size_after",),
                              threshold_pct=0.0)
        # the wild wall-time regression is untracked and invisible
        assert result["verdict"] == "within-noise"
        assert [r["metric"] for r in result["rows"]] == [
            "pass:block.ir_size_after"
        ]

    def test_regression_beats_improvement(self):
        result = gate.compare({"a": 2.0, "b": 0.1}, {"a": 1.0, "b": 1.0},
                              threshold_pct=10.0)
        assert result["verdict"] == "regressed"

    def test_negative_threshold_rejected(self):
        with pytest.raises(PerfError):
            gate.compare({}, {}, threshold_pct=-1.0)


class TestDiff:
    def test_union_of_names_with_absent_sides(self):
        rows = gate.diff({"a": 1.0, "both": 2.0}, {"b": 3.0, "both": 3.0})
        by = {r["metric"]: r for r in rows}
        assert set(by) == {"a", "b", "both"}
        assert by["a"]["b"] is None and by["a"]["delta"] is None
        assert by["b"]["a"] is None
        assert by["both"]["delta"] == 1.0
        assert by["both"]["pct"] == pytest.approx(50.0)


class TestBaselineFiles:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "base.json")
        doc = gate.baseline_doc({"m": 1.5}, meta={"git_sha": "abc"})
        assert doc["schema"] == gate.BASELINE_SCHEMA
        gate.write_baseline(path, doc)
        assert gate.read_baseline(path) == {"m": 1.5}

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/1", "metrics": {}}')
        with pytest.raises(PerfError):
            gate.read_baseline(str(path))

    def test_rejects_non_numeric_metrics(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"schema": "repro.perf.baseline/1", "metrics": {"m": "fast"}}'
        )
        with pytest.raises(PerfError):
            gate.read_baseline(str(path))

    def test_rejects_unreadable_and_invalid(self, tmp_path):
        with pytest.raises(PerfError):
            gate.read_baseline(str(tmp_path / "absent.json"))
        bad = tmp_path / "nonjson.json"
        bad.write_text("{")
        with pytest.raises(PerfError):
            gate.read_baseline(str(bad))
