"""Affine form conversion and arithmetic."""

from fractions import Fraction

import pytest

from repro.ir.expr import BinOp, Const, IntDiv, Min, Var
from repro.symbolic.affine import Affine, affine_diff, affine_equal, from_affine, to_affine


class TestAffineAlgebra:
    def test_make_drops_zero_coefficients(self):
        a = Affine.make({"I": 0, "J": 2}, 1)
        assert a.variables == {"J"}

    def test_add_sub_mul(self):
        a = Affine.make({"I": 1}, 2)
        b = Affine.make({"I": 3, "J": 1}, -1)
        assert (a + b) == Affine.make({"I": 4, "J": 1}, 1)
        assert (a - b) == Affine.make({"I": -2, "J": -1}, 3)
        assert (a * 2) == Affine.make({"I": 2}, 4)
        assert (-a) == Affine.make({"I": -1}, -2)

    def test_scalar_radd_rsub(self):
        a = Affine.variable("I")
        assert (1 + a).const == 1
        assert (1 - a) == Affine.make({"I": -1}, 1)

    def test_substitute(self):
        a = Affine.make({"I": 2, "J": 1}, 5)
        out = a.substitute({"I": Affine.make({"K": 1}, 1)})
        assert out == Affine.make({"K": 2, "J": 1}, 7)

    def test_eval(self):
        a = Affine.make({"I": 2}, 3)
        assert a.eval({"I": 4}) == 11
        with pytest.raises(KeyError):
            a.eval({})

    def test_integrality(self):
        assert Affine.make({"I": 1}, 2).is_integral()
        assert not (Affine.variable("I") * Fraction(1, 2)).is_integral()


class TestConversion:
    def test_round_trip(self):
        e = Var("I") * 2 + Var("N") - 3
        a = to_affine(e)
        assert a == Affine.make({"I": 2, "N": 1}, -3)
        assert to_affine(from_affine(a)) == a

    def test_mul_requires_constant_side(self):
        assert to_affine(BinOp("*", Var("I"), Var("J"))) is None

    def test_float_rejected(self):
        assert to_affine(Const(1.5)) is None

    def test_minmax_not_affine(self):
        assert to_affine(Min((Var("I"), Var("N")))) is None

    def test_exact_intdiv_folds(self):
        e = IntDiv(Var("I") * 4 + 8, Const(4))
        assert to_affine(e) == Affine.make({"I": 1}, 2)

    def test_inexact_intdiv_rejected(self):
        assert to_affine(IntDiv(Var("I"), Const(2))) is None

    def test_from_affine_requires_integral(self):
        with pytest.raises(ValueError):
            from_affine(Affine.variable("I") * Fraction(1, 2))

    def test_constant_form(self):
        assert from_affine(Affine.constant(7)) == Const(7)


class TestHelpers:
    def test_affine_equal(self):
        assert affine_equal(Var("N") - 1, Var("N") + (-1)) is True
        assert affine_equal(Var("N"), Var("M")) is False
        assert affine_equal(Min((Var("N"), Var("M"))), Var("N")) is None

    def test_affine_diff(self):
        d = affine_diff(Var("I") + 5, Var("I") + 2)
        assert d == Affine.constant(3)
