"""Expression simplification: affine canonicalization and MIN/MAX logic."""

from repro.ir.expr import (
    BinOp,
    Call,
    Compare,
    Const,
    IntDiv,
    Max,
    Min,
    Not,
    Var,
)
from repro.symbolic.assume import Assumptions
from repro.symbolic.simplify import prove_eq, prove_le, prove_lt, simplify


class TestAffineNormalization:
    def test_sub_one_forms_agree(self):
        assert simplify(BinOp("-", Var("N"), Const(1))) == simplify(
            BinOp("+", Var("N"), Const(-1))
        )

    def test_nested_sums_flatten(self):
        e = BinOp("+", BinOp("+", Var("I"), Var("IS")), Const(-1))
        s = simplify(e)
        assert s == simplify(Var("I") + Var("IS") - 1)

    def test_cancellation(self):
        assert simplify(Var("I") + Var("J") - Var("I")) == Var("J")


class TestMinMax:
    def test_provably_redundant_arm_dropped(self):
        assert simplify(Min((Var("N"), Var("N") + 5))) == Var("N")
        assert simplify(Max((Var("N"), Var("N") + 5))) == Var("N") + 5

    def test_undecidable_arms_kept(self):
        e = simplify(Min((Var("N"), Var("M"))))
        assert isinstance(e, Min) and len(e.args) == 2

    def test_context_prunes(self):
        ctx = Assumptions().assume_le("KK", Var("N") - 1)
        # MAX(KK+1, N) == N given KK+1 <= N
        assert simplify(Max((Var("KK") + 1, Var("N"))), ctx) == Var("N")

    def test_equal_arms_keep_first(self):
        e = simplify(Min((Var("A"), Var("A") + 0)))
        assert e == Var("A")

    def test_arith_distributes_into_min(self):
        e = simplify(BinOp("+", Min((Var("A"), Var("B"))), Const(1)))
        assert e == Min((Var("A") + 1, Var("B") + 1))

    def test_subtract_min_becomes_max(self):
        e = simplify(BinOp("-", Var("X"), Min((Var("A"), Var("B")))))
        assert isinstance(e, Max)

    def test_negative_scale_flips(self):
        e = simplify(BinOp("*", Const(-1), Min((Var("A"), Var("B")))))
        assert isinstance(e, Max)

    def test_intdiv_distributes(self):
        e = simplify(IntDiv(Min((Var("A"), Var("B"))), Const(2)))
        assert isinstance(e, Min)
        assert all(isinstance(a, IntDiv) for a in e.args)


class TestBooleans:
    def test_not_compare_negates(self):
        e = simplify(Not(Compare("eq", Var("X"), Const(0))))
        assert e == Compare("ne", Var("X"), Const(0))

    def test_double_not(self):
        assert simplify(Not(Not(Var("P").eq_(1)))) == Var("P").eq_(1)


class TestProvers:
    def setup_method(self):
        self.ctx = (
            Assumptions()
            .assume_ge("KS", 2)
            .assume_range("KK", Var("K"), Var("K") + Var("KS") - 1)
            .assume_ge("K", 1)
            .assume_le("KK", Var("N") - 1)
        )

    def test_le_through_min_rhs(self):
        # KK + 1 <= MIN(K + KS, N): both arms provable
        target = Min((Var("K") + Var("KS"), Var("N")))
        assert prove_le(Var("KK") + 1, target, self.ctx)

    def test_lt_min_vs_min(self):
        a = Min((Var("K") + Var("KS") - 1, Var("N") - 1))
        b = Min((Var("K") + Var("KS"), Var("N")))
        assert prove_lt(a, b, self.ctx)

    def test_max_lhs(self):
        # MAX(KK, 1) <= N - 1
        assert prove_le(Max((Var("KK"), Const(1))), Var("N") - 1, self.ctx)

    def test_eq(self):
        assert prove_eq(Var("K") + 1, Var("K") + 1, self.ctx)
        assert not prove_eq(Var("K"), Var("N"), self.ctx)

    def test_unprovable_is_false(self):
        assert not prove_le(Var("N"), Var("K"), self.ctx)
