"""Assumption contexts: bound derivation and sign decisions."""

from repro.ir.expr import Min, Var
from repro.symbolic.assume import Assumptions


class TestBasicFacts:
    def test_range_gives_bounds(self):
        ctx = Assumptions().assume_range("N", 1, 100)
        assert ctx.lower_bound("N") == 1
        assert ctx.upper_bound("N") == 100

    def test_is_nonneg_three_valued(self):
        ctx = Assumptions().assume_ge("KS", 1)
        assert ctx.is_nonneg(Var("KS") - 1) is True
        assert ctx.is_nonneg(-Var("KS")) is False
        assert ctx.is_nonneg(Var("KS") - 5) is None

    def test_is_pos(self):
        ctx = Assumptions().assume_ge("KS", 2)
        assert ctx.is_pos(Var("KS") - 1) is True
        assert ctx.is_pos(1 - Var("KS")) is False

    def test_is_zero(self):
        ctx = Assumptions()
        assert ctx.is_zero(Var("I") - Var("I")) is True
        assert ctx.is_zero(Var("I") - Var("J")) is None
        ctx2 = Assumptions().assume_range("D", 0, 0)
        assert ctx2.is_zero(Var("D")) is True


class TestChainedBounds:
    def test_transitive_substitution(self):
        # K <= N - KS and KS >= 2  =>  K + KS - 1 < N
        ctx = (
            Assumptions()
            .assume_ge("KS", 2)
            .assume_le("K", Var("N") - Var("KS"))
            .assume_ge("K", 1)
        )
        assert ctx.compare(Var("K") + Var("KS") - 1, Var("N")) == "<"

    def test_relational_fact_stored_both_ways(self):
        # I >= KK + 1 also bounds KK above by I - 1
        ctx = Assumptions().assume_ge("I", Var("KK") + 1).assume_le("I", Var("N"))
        assert ctx.compare(Var("KK"), Var("N")) == "<"

    def test_cycle_terminates(self):
        ctx = Assumptions().assume_le("A", Var("B")).assume_le("B", Var("A"))
        # consistent but unresolvable to constants; must not hang
        assert ctx.compare(Var("A"), Var("C")) is None


class TestCompare:
    def test_constant_difference(self):
        ctx = Assumptions()
        assert ctx.compare(Var("K") + 1, Var("K")) == ">"
        assert ctx.compare(Var("K"), Var("K")) == "=="
        assert ctx.compare(Var("K") - 2, Var("K")) == "<"

    def test_unknown_is_none(self):
        assert Assumptions().compare(Var("A"), Var("B")) is None

    def test_non_affine_is_none(self):
        assert Assumptions().compare(Min((Var("A"), Var("B"))), Var("A")) is None

    def test_implies_helpers(self):
        ctx = Assumptions().assume_ge("N", 5)
        assert ctx.implies_le(5, Var("N"))
        assert ctx.implies_lt(4, Var("N"))
        assert not ctx.implies_lt(5, Var("N"))

    def test_copy_isolated(self):
        ctx = Assumptions().assume_ge("N", 1)
        ctx2 = ctx.copy().assume_ge("N", 10)
        assert ctx.lower_bound("N") == 1
        assert ctx2.lower_bound("N") == 10


class TestForLoopNest:
    def test_builder(self):
        ctx = Assumptions.for_loop_nest([("I", 1, Var("N")), ("J", Var("I"), Var("N"))])
        assert ctx.is_nonneg(Var("J") - 1) is True  # J >= I >= 1
