"""repro.obs.snapshot: portable form, restore, cross-clock merge."""

from __future__ import annotations

import json

import pytest

from repro.obs import core
from repro.obs.snapshot import SCHEMA, merge, restore, snapshot


def ticking_clock(step: float = 1.0):
    """A deterministic clock: returns 0, step, 2*step, ... on each call."""
    state = {"t": -step}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


def observed(clock=None) -> core.Obs:
    """An observer with one of everything."""
    o = core.Obs(clock=clock or ticking_clock())
    o.count("dep.queries", 3)
    for v in (1.0, 2.0, 4.0):
        o.observe("lat_s", v)
    with o.span("outer", cat="a", status="applied"):
        with o.span("inner", cat="b"):
            pass
    return o


class TestRoundtrip:
    def test_snapshot_is_json_serializable(self):
        doc = snapshot(observed())
        assert doc["schema"] == SCHEMA
        assert json.loads(json.dumps(doc)) == doc

    def test_restore_preserves_everything(self):
        doc = snapshot(observed())
        back = restore(doc, clock=ticking_clock())
        assert back.counters == {"dep.queries": 3}
        h = back.histograms["lat_s"]
        assert (h.count, h.total, h.min, h.max) == (3, 7.0, 1.0, 4.0)
        assert h.quantile("p50") == 2.0  # exact: still in the P2 buffer
        inner, outer = back.spans
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert outer.args == {"status": "applied"}
        # span timestamps stay epoch-relative through the roundtrip
        orig = observed()
        assert [(s.ts, s.dur) for s in back.spans] == [
            (s.ts, s.dur) for s in orig.spans
        ]

    def test_restore_then_snapshot_is_identity(self):
        doc = snapshot(observed())
        assert snapshot(restore(doc, clock=ticking_clock())) == doc

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            restore({"schema": "repro.obs/1"})
        with pytest.raises(ValueError):
            merge(core.Obs(), {"spans": []})


class TestMerge:
    def test_counters_sum(self):
        parent = core.Obs(clock=ticking_clock())
        parent.count("dep.queries", 10)
        parent.count("parent.only")
        merge(parent, snapshot(observed()))
        assert parent.counters == {
            "dep.queries": 13,
            "parent.only": 1,
        }

    def test_histograms_merge_exactly_in_the_moments(self):
        parent = core.Obs(clock=ticking_clock())
        for v in (0.5, 8.0):
            parent.observe("lat_s", v)
        merge(parent, snapshot(observed()))
        h = parent.histograms["lat_s"]
        assert (h.count, h.total, h.min, h.max) == (5, 15.5, 0.5, 8.0)
        # all five observations still fit the exact buffer
        assert h.quantile("p50") == 2.0

    def test_clock_domains_align_on_the_anchor(self):
        # parent clock and child clock have unrelated epochs; the pool
        # anchors child t=0 at the parent-clock assignment time
        parent = core.Obs(clock=ticking_clock())        # epoch 0.0
        child = core.Obs(clock=ticking_clock(0.5))      # epoch 0.0, own domain
        with child.span("job:x", cat="serve.worker"):   # ts 0.5, dur 0.5
            pass
        merge(parent, snapshot(child), anchor_s=10.0, lane="w1")
        (s,) = parent.spans
        assert s.ts == 10.5  # anchor + child-relative time
        assert s.dur == 0.5
        assert s.lane == "w1"

    def test_anchor_is_parent_clock_absolute(self):
        clock = ticking_clock()
        parent = core.Obs(clock=clock)  # epoch 0.0
        parent.epoch = 3.0              # pretend the parent started later
        child = core.Obs(clock=ticking_clock())
        child.event("e", start=1.0, dur=0.25)
        merge(parent, snapshot(child), anchor_s=10.0)
        (s,) = parent.spans
        # child-relative 1.0 lands at parent-relative (10.0 - 3.0) + 1.0
        assert s.ts == 8.0

    def test_depth_and_existing_lane_preserved(self):
        parent = core.Obs(clock=ticking_clock())
        child = observed()
        child.spans[0].lane = "w9"  # already tagged: do not overwrite
        merge(parent, snapshot(child), lane="w0")
        inner, outer = parent.spans
        assert inner.depth == 1 and outer.depth == 0
        assert inner.lane == "w9"
        assert outer.lane == "w0"

    def test_merge_without_anchor_keeps_child_times(self):
        parent = core.Obs(clock=ticking_clock())
        merge(parent, snapshot(observed()))
        orig = observed()
        assert [s.ts for s in parent.spans] == [s.ts for s in orig.spans]


class TestChromeExport:
    def test_merged_spans_get_their_own_pid_lane(self):
        from repro.obs.export import chrome_trace

        parent = observed()
        merge(parent, snapshot(observed()), anchor_s=0.0, lane="w0")
        merge(parent, snapshot(observed()), anchor_s=0.0, lane="w1")
        trace = chrome_trace(parent)
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {1, 2, 3}
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "process_name"
        }
        assert names == {"repro", "repro worker w0", "repro worker w1"}
