"""repro.obs.core: counters, histograms, span nesting, enable/disable."""

from __future__ import annotations

import pytest

from repro.obs import core


def ticking_clock(step: float = 1.0):
    """A deterministic clock: returns 0, step, 2*step, ... on each call."""
    state = {"t": -step}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


class TestCounters:
    def test_count_accumulates(self):
        o = core.Obs()
        o.count("dep.queries")
        o.count("dep.queries", 4)
        assert o.counters == {"dep.queries": 5}

    def test_histogram_summary(self):
        o = core.Obs()
        for v in (1.0, 3.0, 2.0):
            o.observe("lat_s", v)
        s = o.histograms["lat_s"].summary()
        assert s["count"] == 3
        assert s["total"] == 6.0
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["mean"] == 2.0

    def test_empty_histogram_summary_has_no_infinities(self):
        h = core.Histogram()
        s = h.summary()
        assert s == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                     "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestStreamingQuantiles:
    def test_exact_below_five_observations(self):
        h = core.Histogram()
        for v in (4.0, 1.0, 3.0, 2.0):
            h.observe(v)
        assert h.quantile("p50") == 2.5  # interpolated over the exact buffer
        assert h.quantile("p99") == pytest.approx(3.97)

    def test_p2_tracks_a_uniform_stream(self):
        h = core.Histogram()
        # deterministic low-discrepancy walk over [0, 1)
        for i in range(2000):
            h.observe((i * 419) % 2000 / 2000)
        assert h.quantile("p50") == pytest.approx(0.5, abs=0.05)
        assert h.quantile("p95") == pytest.approx(0.95, abs=0.05)
        assert h.quantile("p99") == pytest.approx(0.99, abs=0.02)

    def test_estimates_are_clamped_into_range(self):
        h = core.Histogram()
        for v in (5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0):
            h.observe(v)
        for key in ("p50", "p95", "p99"):
            assert h.quantile(key) == 5.0

    def test_unknown_quantile_key_raises(self):
        with pytest.raises(KeyError):
            core.Histogram().quantile("p42")

    def test_summary_includes_quantiles(self):
        h = core.Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["p50"] == 2.0
        assert s["p99"] == pytest.approx(2.98)

    def test_merge_of_halves_matches_full_stream(self):
        full, a, b = core.Histogram(), core.Histogram(), core.Histogram()
        values = [(i * 419) % 1000 / 1000 for i in range(1000)]
        for v in values:
            full.observe(v)
        for v in values[:500]:
            a.observe(v)
        for v in values[500:]:
            b.observe(v)
        a.merge(b)
        assert a.count == full.count
        assert a.total == pytest.approx(full.total)
        assert (a.min, a.max) == (full.min, full.max)
        for key in ("p50", "p95", "p99"):
            assert a.quantile(key) == pytest.approx(full.quantile(key), abs=0.05)

    def test_merge_replays_a_small_buffer_exactly(self):
        big, small = core.Histogram(), core.Histogram()
        for i in range(100):
            big.observe(float(i))
        for v in (0.0, 99.0):
            small.observe(v)
        before = big.count
        big.merge(small)
        assert big.count == before + 2
        assert (big.min, big.max) == (0.0, 99.0)

    def test_merge_into_empty_copies(self):
        a, b = core.Histogram(), core.Histogram()
        for v in (1.0, 2.0, 3.0):
            b.observe(v)
        a.merge(b)
        assert a.summary() == b.summary()
        b.observe(100.0)  # the copy must be independent
        assert a.count == 3

    def test_to_dict_from_dict_roundtrip_keeps_estimating(self):
        h = core.Histogram()
        for i in range(50):
            h.observe(float(i))
        back = core.Histogram.from_dict(h.to_dict())
        assert back.summary() == h.summary()
        back.observe(1000.0)
        assert back.count == 51 and back.max == 1000.0


class TestSpans:
    def test_nesting_depth_and_duration(self):
        o = core.Obs(clock=ticking_clock())
        with o.span("outer", cat="a"):
            with o.span("inner", cat="b"):
                pass
        # spans close innermost-first
        inner, outer = o.spans
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert inner.dur == 1.0  # one clock tick inside
        assert outer.ts < inner.ts

    def test_span_args_mutable_until_close(self):
        o = core.Obs()
        with o.span("run", engine="interpreter") as args:
            args["misses"] = 7
        assert o.spans[0].args == {"engine": "interpreter", "misses": 7}

    def test_span_recorded_when_body_raises(self):
        o = core.Obs()
        try:
            with o.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [s.name for s in o.spans] == ["boom"]
        assert o._depth == 0  # stack unwound

    def test_event_reports_externally_timed_interval(self):
        o = core.Obs(clock=ticking_clock())
        o.event("pass:block", cat="pipeline", start=o.epoch + 2.0, dur=0.5, status="applied")
        (s,) = o.spans
        assert s.ts == 2.0 and s.dur == 0.5
        assert s.args["status"] == "applied"

    def test_span_summary_aggregates_by_name(self):
        o = core.Obs(clock=ticking_clock())
        with o.span("a"):
            pass
        with o.span("a"):
            pass
        with o.span("b"):
            pass
        summary = o.span_summary()
        assert summary["a"]["count"] == 2
        assert summary["a"]["total_s"] == 2.0
        assert summary["b"]["count"] == 1


class TestActiveObserver:
    def test_disabled_helpers_are_noops(self):
        assert core.current() is None
        core.count("x")  # must not raise
        core.observe("y", 1.0)
        with core.span("z") as args:
            args["k"] = 1  # yielded dict is just discarded

    def test_enabled_routes_helpers_and_restores(self):
        with core.enabled() as o:
            assert core.current() is o
            core.count("hits", 2)
            core.observe("lat_s", 0.25)
            with core.span("work", cat="t"):
                pass
        assert core.current() is None
        assert o.counters == {"hits": 2}
        assert o.histograms["lat_s"].count == 1
        assert [s.name for s in o.spans] == ["work"]

    def test_enabled_accepts_existing_observer_and_nests(self):
        mine = core.Obs()
        with core.enabled(mine) as o:
            assert o is mine
            inner = core.Obs()
            with core.enabled(inner):
                core.count("c")
            assert core.current() is mine
        assert inner.counters == {"c": 1}
        assert "c" not in mine.counters
