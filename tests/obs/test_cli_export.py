"""The repro.obs CLI and exporters, run in-process on real workloads."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import is_envelope, payload_of, validate_document
from repro.artifacts.validate import RULE_STALE_VERSION
from repro.obs import core, export
from repro.obs.cli import main


class TestChromeTrace:
    def test_event_shape(self):
        o = core.Obs()
        with o.span("outer", cat="pipeline"):
            with o.span("inner"):
                pass
        doc = export.chrome_trace(o)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        assert [e["name"] for e in xs] == ["outer", "inner"]  # sorted by ts
        for e in xs:
            assert e["dur"] > 0 and e["ts"] >= 0
            assert e["pid"] == 1 and e["tid"] == 1
        assert doc["otherData"]["schema"] == export.SCHEMA

    def test_uncategorized_span_defaults_cat(self):
        o = core.Obs()
        with o.span("x"):
            pass
        (event,) = [e for e in export.chrome_trace(o)["traceEvents"] if e["ph"] == "X"]
        assert event["cat"] == "repro"


class TestValidateMetrics:
    def test_minimal_valid_doc(self):
        doc = export.metrics(core.Obs())
        assert export.validate_metrics(doc) == []

    def test_wrong_schema_rejected(self):
        # schema identity is the envelope layer's job now
        doc = export.metrics(core.Obs())
        doc["schema"] = "repro.obs/99"
        problems = validate_document(doc)
        assert [p.rule for p in problems] == [RULE_STALE_VERSION]

    def test_non_integer_counter_rejected(self):
        doc = export.metrics(core.Obs())
        doc["counters"]["bad"] = 1.5
        assert any("bad" in e for e in export.validate_metrics(doc))

    def test_attribution_sum_mismatch_rejected(self):
        o = core.Obs()
        doc = export.metrics(o)
        doc["attribution"] = {
            "rows": [{"loop": "I", "statement": "A(I)", "array": "A",
                      "accesses": 2, "misses": 1, "writebacks": 0,
                      "tlb_misses": 0, "writes": 0}],
            "by_loop": {"I": {"accesses": 2, "misses": 1, "writebacks": 0,
                              "tlb_misses": 0, "writes": 0}},
            "by_statement": {"I: A(I)": {"accesses": 2, "misses": 1,
                                         "writebacks": 0, "tlb_misses": 0,
                                         "writes": 0}},
            "by_array": {"A": {"accesses": 2, "misses": 1, "writebacks": 0,
                               "tlb_misses": 0, "writes": 0}},
            "totals": {"accesses": 2, "misses": 0, "writebacks": 0,
                       "tlb_misses": 0, "writes": 0},  # misses disagree
        }
        errors = export.validate_metrics(doc)
        assert any("misses" in e for e in errors)

    def test_machine_cache_mismatch_rejected(self):
        from repro.machine.cache import CacheStats

        doc = export.metrics(
            core.Obs(), machine_cache=CacheStats(accesses=10, misses=3)
        )
        doc["attribution"] = {
            "rows": [], "by_loop": {}, "by_statement": {}, "by_array": {},
            "totals": {"accesses": 9, "misses": 3, "writebacks": 0,
                       "tlb_misses": 0, "writes": 0},
        }
        errors = export.validate_metrics(doc)
        assert any("machine cache accesses" in e for e in errors)


@pytest.mark.slow
class TestCliEndToEnd:
    def test_conv_writes_valid_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "conv",
            "--chrome-trace", str(trace_path),
            "--metrics", str(metrics_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro.obs profile — conv" in out
        assert "loops (by misses):" in out

        trace = json.loads(trace_path.read_text())
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert "pipeline:conv" in names
        assert any(n.startswith("pass:") for n in names)
        assert any(n.startswith("interpret:") for n in names)

        env = json.loads(metrics_path.read_text())
        assert is_envelope(env) and validate_document(env) == []
        doc = payload_of(env)
        assert export.validate_metrics(doc) == []
        assert doc["meta"]["workload"] == "conv"
        # the acceptance invariant, re-checked from the written artifact
        totals = doc["attribution"]["totals"]
        assert totals["accesses"] == doc["machine"]["cache"]["accesses"]
        assert totals["misses"] == doc["machine"]["cache"]["misses"]
        # conv's split/jam/scalars pipeline leans on Fourier–Motzkin queries
        assert doc["counters"]["fm.direction.queries"] > 0
        assert doc["counters"]["pipeline.pass.applied"] == 3

    def test_custom_passes_and_sizes(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        rc = main([
            "conv", "--passes", "split", "--sizes", "N1=16,N2=12,N3=14",
            "--metrics", str(metrics_path),
        ])
        assert rc == 0
        doc = payload_of(json.loads(metrics_path.read_text()))
        assert doc["meta"]["passes"] == "['split']"


class TestCliErrors:
    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "lu_nopivot" in out and "conv" in out

    def test_missing_workload_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "workload name" in capsys.readouterr().err

    def test_unknown_workload_is_usage_error(self, capsys):
        assert main(["no_such_workload"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_sizes_is_usage_error(self, capsys):
        assert main(["conv", "--sizes", "N1"]) == 2
        assert "--sizes" in capsys.readouterr().err


@pytest.mark.slow
class TestParVerdictColumn:
    def test_loop_table_carries_parallelism_verdicts(self, capsys):
        # satellite: the per-loop miss table names each nest's repro.par
        # classification so hot serial loops are visible at a glance
        rc = main(["matmul"])
        assert rc == 0
        out = capsys.readouterr().out
        loop_lines = [
            line for line in
            out.split("loops (by misses):")[1].split("statements")[0].splitlines()
            if "misses" in line
        ]
        tagged = [l for l in loop_lines if "[parallel]" in l
                  or "[reduction]" in l or "[serial]" in l]
        assert tagged, out
