"""Miss attribution: provenance tracking and the sum-consistency invariant."""

from __future__ import annotations

from repro.ir.build import assign, do, ref
from repro.ir.expr import Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.machine.cache import Cache, CacheConfig
from repro.machine.layout import Layout
from repro.machine.tracer import CacheTracer, trace_procedure
from repro.obs.attribution import TOPLEVEL, MissAttribution, Provenance, stmt_label

FIELDS = ("accesses", "misses", "writebacks", "tlb_misses", "writes")


class TestProvenance:
    def test_loop_path_push_pop(self):
        p = Provenance("lu")
        p.push_loop("K")
        p.push_loop("I")
        assert p.path == ("K", "I")
        p.pop_loop()
        assert p.path == ("K",)

    def test_stmt_labels(self, vecadd_proc):
        loop_j = vecadd_proc.body[0]
        loop_i = loop_j.body[0]
        store = loop_i.body[0]
        assert stmt_label(loop_j) == "DO J"
        assert stmt_label(store) == "A(I)"

    def test_labels_memoized_by_identity(self, vecadd_proc):
        p = Provenance()
        store = vecadd_proc.body[0].body[0].body[0]
        p.set_stmt(store)
        first = p.stmt
        p.set_stmt(store)
        assert p.stmt is first  # same cached string object


class TestMissAttribution:
    def test_views_sum_to_totals(self):
        a = MissAttribution()
        a.record(("K", "I"), "A(I)", "A", True, True, 1, False)
        a.record(("K", "I"), "A(I)", "A", False, False, 0, True)
        a.record(("K",), "B(K)", "B", False, True, 0, False)
        a.record((), "C(1)", "C", True, False, 0, False)
        totals = a.totals()
        assert totals == {
            "accesses": 4, "misses": 2, "writebacks": 1,
            "tlb_misses": 1, "writes": 2,
        }
        for view in (a.by_loop(), a.by_statement(), a.by_array()):
            for f in FIELDS:
                assert sum(r[f] for r in view.values()) == totals[f]

    def test_toplevel_key_for_accesses_outside_loops(self):
        a = MissAttribution()
        a.record((), "X(1)", "X", False, False, 0, False)
        assert TOPLEVEL in a.by_loop()
        assert f"{TOPLEVEL}: X(1)" in a.by_statement()

    def test_to_dict_rows_sorted_by_misses(self):
        a = MissAttribution()
        a.record(("I",), "A(I)", "A", False, True, 0, False)
        a.record(("I",), "B(I)", "B", False, True, 0, False)
        a.record(("I",), "B(I)", "B", False, True, 0, False)
        d = a.to_dict()
        assert [r["array"] for r in d["rows"]] == ["B", "A"]
        assert set(d) == {"rows", "by_loop", "by_statement", "by_array", "totals"}


class TestTracedAttribution:
    def test_attribute_run_matches_cache_stats(self, vecadd_proc, tiny_machine):
        sizes = {"N": 12, "M": 40}
        tracer = trace_procedure(vecadd_proc, sizes, tiny_machine, attribute=True)
        a = tracer.attribution
        assert a is not None
        totals = a.totals()
        stats = tracer.stats
        assert totals["accesses"] == stats.accesses
        assert totals["misses"] == stats.misses
        assert totals["writebacks"] == stats.writebacks
        assert totals["writes"] == stats.writes
        # per-array view agrees with the tracer's own per-array tallies
        by_array = a.by_array()
        assert {k: v["accesses"] for k, v in by_array.items()} == tracer.per_array
        assert {
            k: v["misses"] for k, v in by_array.items() if v["misses"]
        } == tracer.per_array_misses

    def test_sites_carry_loop_paths(self, vecadd_proc, tiny_machine):
        tracer = trace_procedure(
            vecadd_proc, {"N": 4, "M": 8}, tiny_machine, attribute=True
        )
        by_loop = tracer.attribution.by_loop()
        # every access of the vecadd kernel happens inside DO J / DO I
        assert list(by_loop) == ["J/I"]
        by_stmt = tracer.attribution.by_statement()
        assert "J/I: A(I)" in by_stmt
        # A is read+written, B read once per (J,I): 3 refs per iteration
        assert by_loop["J/I"]["accesses"] == 3 * 4 * 8

    def test_attribute_and_codegen_agree_on_stats(self, vecadd_proc, tiny_machine):
        sizes = {"N": 6, "M": 32}
        interp = trace_procedure(vecadd_proc, sizes, tiny_machine, attribute=True)
        comp = trace_procedure(vecadd_proc, sizes, tiny_machine)
        assert interp.stats == comp.stats

    def test_if_condition_charged_to_if_label(self, tiny_machine):
        # IF (MASK(I) .NE. 0) A(I) = 2.0 — the MASK read belongs to the IF site
        from repro.ir.build import if_
        from repro.ir.expr import Compare, Const

        proc = Procedure(
            "guarded",
            ("N",),
            (ArrayDecl("A", (Var("N"),)), ArrayDecl("MASK", (Var("N"),))),
            (
                do(
                    "I", 1, "N",
                    if_(
                        Compare("ne", ref("MASK", "I"), Const(0.0)),
                        assign(ref("A", "I"), 2.0),
                    ),
                ),
            ),
        )
        tracer = trace_procedure(proc, {"N": 16}, tiny_machine, attribute=True)
        by_stmt = tracer.attribution.by_statement()
        if_sites = [k for k in by_stmt if k.startswith("I: IF")]
        assert if_sites, f"no IF site in {list(by_stmt)}"
        assert sum(by_stmt[k]["accesses"] for k in if_sites) == 16  # MASK reads


class TestTracerDirect:
    def test_writeback_charged_to_triggering_access(self):
        # 1-set, 1-way cache: write line 0 (dirty), then read line 1 -> the
        # read evicts dirty line 0 and must be charged its write-back.
        proc = Procedure(
            "p", ("N",), (ArrayDecl("A", (Var("N"),)),), ()
        )
        layout = Layout.for_procedure(proc, {"N": 16}, line_bytes=32)
        cache = Cache(CacheConfig(32, 32, 1))
        prov = Provenance("p")
        attr = MissAttribution()
        tracer = CacheTracer(layout, cache, provenance=prov, attribution=attr)
        prov.stmt = "store"
        tracer.access("A", (1,), True)  # line 0, dirtied
        prov.stmt = "load"
        tracer.access("A", (5,), False)  # line 1, evicts dirty line 0
        rows = {stmt: r for (_, stmt, _), r in attr.sites.items()}
        assert rows["store"][2] == 0  # writebacks slot
        assert rows["load"][2] == 1
        assert cache.stats.writebacks == 1
