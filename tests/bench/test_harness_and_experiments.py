"""Bench harness units and fast smoke checks of the experiment builders.

The full tables live in ``benchmarks/``; here we validate the machinery
(measure, Table rendering, scaled workloads) and that each compiler-derived
variant builder yields a semantically equivalent program — on small sizes,
so the whole file stays quick.
"""

import numpy as np
import pytest

import repro.bench.experiments as E
from repro.algorithms import (
    aconv_ir,
    conv_ir,
    lu_pivot_point_ir,
    lu_point_ir,
    matmul_guarded_ir,
    sparse_b,
)
from repro.bench.harness import MeasureResult, Table, measure, render_rows
from repro.machine.model import scaled_machine
from repro.runtime.validate import assert_equivalent


class TestMeasure:
    def test_counts_are_consistent(self, vecadd_proc, tiny_machine):
        r = measure(vecadd_proc, {"N": 8, "M": 16}, tiny_machine)
        # per J iteration: M*(A load + A store) + 1 B load (traced at the
        # access level, B is re-loaded each I iteration in the source)
        assert r.refs == 8 * 16 * 3
        assert 0 < r.misses <= r.refs
        assert r.modeled_seconds > 0
        assert r.miss_ratio == r.misses / r.refs

    def test_deterministic(self, vecadd_proc, tiny_machine):
        a = measure(vecadd_proc, {"N": 8, "M": 16}, tiny_machine, seed=1)
        b = measure(vecadd_proc, {"N": 8, "M": 16}, tiny_machine, seed=1)
        assert (a.refs, a.misses, a.writebacks) == (b.refs, b.misses, b.writebacks)

    def test_tlb_counted_when_present(self, vecadd_proc):
        m = scaled_machine(4)
        r = measure(vecadd_proc, {"N": 8, "M": 2048}, m)
        assert r.tlb_misses > 0


class TestTable:
    def test_render(self):
        t = Table("demo", "nowhere", "toy", columns=("a", "b"))
        t.add(a=1, b=2.34567)
        t.add(a=10, b=0.001)
        text = t.render()
        assert "demo" in text and "2.35" in text
        assert t.column("a") == [1, 10]

    def test_render_rows_alignment(self):
        text = render_rows([{"x": 1}, {"x": 100}], ("x",))
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # fixed width


class TestScaling:
    def test_scaled_size_and_block(self):
        assert E.scaled_size(300, 4) == 75
        assert E.scaled_size(500, 4) == 125
        assert E.scaled_block(32, 4) == 8
        assert E.scaled_block(64, 4) == 16
        assert E.scaled_block(2, 4) == 2  # floor

    def test_conv_sizes_mix(self):
        s = E.conv_sizes(300)
        # ~75% of iterations must be in the triangular region
        n1, n2, n3 = s["N1"], s["N2"], s["N3"]
        rhomb = (n1 - n2) * (n2 + 1)
        tri = sum(n1 - i + 1 for i in range(n1 - n2 + 1, n3 + 1))
        frac = tri / (tri + rhomb)
        assert 0.65 <= frac <= 0.85


class TestVariantBuilders:
    """Every compiler-built benchmark variant must be semantically
    equivalent to its point algorithm (small sizes; big runs are in
    benchmarks/)."""

    def test_derived_block_lu(self):
        assert_equivalent(lu_point_ir(), E.derived_block_lu(), {"N": 11, "KS": 4})

    def test_lu_two_plus(self):
        assert_equivalent(lu_point_ir(), E.lu_two_plus(), {"N": 14, "KS": 4})
        assert_equivalent(lu_point_ir(), E.lu_two_plus(), {"N": 9, "KS": 4})

    def test_lu_pivot_one_plus(self):
        assert_equivalent(
            lu_pivot_point_ir(), E.lu_pivot_one_plus(), {"N": 13, "KS": 4}, exact=True
        )

    def test_matmul_variants(self):
        b = sparse_b(18, 0.15, run_len=4).astype(np.float32)
        for variant in (E.matmul_uj_naive(), E.matmul_ujif()):
            assert_equivalent(
                matmul_guarded_ir(), variant, {"N": 18}, arrays={"B": b}, exact=True
            )

    @pytest.mark.parametrize("kind,point", [("aconv", aconv_ir()), ("conv", conv_ir())])
    def test_conv_transformed(self, kind, point):
        sizes = {"N1": 42, "N2": 36, "N3": 42, "DT": 0.5}
        assert_equivalent(point, E.conv_transformed(kind), sizes, exact=False, rtol=1e-9)

    def test_givens_measured_variant(self):
        from repro.algorithms import givens_point_ir

        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (12, 9))
        assert_equivalent(
            givens_point_ir(),
            E.givens_opt_measured(),
            {"M": 12, "N": 9},
            arrays={"A": a},
            exact=True,
        )
