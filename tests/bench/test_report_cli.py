"""repro.bench.report CLI: --progress lines, partial output, exit codes."""

from __future__ import annotations

import pytest

from repro.bench import report
from repro.bench.harness import Table


def fake_table(title: str) -> Table:
    t = Table(
        title=title,
        paper_ref="test ref",
        machine="test machine",
        columns=("variant", "seconds"),
    )
    t.add(variant="orig", seconds=1.0)
    return t


@pytest.fixture
def patched_builders(monkeypatch):
    """Swap the real (minutes-long) table builders for instant fakes."""

    def use(builders):
        monkeypatch.setattr(report, "_builders", lambda scale: builders)

    return use


class TestBuildAll:
    def test_failure_is_collected_not_raised(self, patched_builders):
        def boom():
            raise RuntimeError("simulated table crash")

        patched_builders([("good", lambda: fake_table("good")), ("bad", boom)])
        tables, elapsed, failures = report.build_all(progress=False)
        assert [t.title for t in tables] == ["good"]
        assert len(failures) == 1
        assert failures[0][0] == "bad"
        assert "simulated table crash" in failures[0][1]

    def test_progress_lines(self, patched_builders, capsys):
        patched_builders([("T9 fake", lambda: fake_table("T9"))])
        report.build_all(progress=True)
        assert "T9 fake: done in" in capsys.readouterr().out


class TestMainExitCodes:
    def test_all_tables_ok_exits_zero(self, patched_builders, tmp_path, capsys):
        patched_builders([("only", lambda: fake_table("Only Table"))])
        path = tmp_path / "EXPERIMENTS.md"
        assert report.main([str(path)]) == 0
        text = path.read_text()
        assert "## Only Table" in text
        assert "| variant | seconds |" in text

    def test_failing_table_exits_nonzero_but_writes_survivors(
        self, patched_builders, tmp_path, capsys
    ):
        def boom():
            raise RuntimeError("simulated table crash")

        patched_builders(
            [("alive", lambda: fake_table("Alive")), ("dead", boom)]
        )
        path = tmp_path / "EXPERIMENTS.md"
        assert report.main(["--progress", str(path)]) == 1
        captured = capsys.readouterr()
        assert "alive: done in" in captured.out
        assert "dead: FAILED after" in captured.out
        assert "TABLE FAILED: dead" in captured.err
        assert "1 table(s) failed" in captured.err
        # the surviving table still landed on disk
        assert "## Alive" in path.read_text()
        assert "## dead" not in path.read_text()
