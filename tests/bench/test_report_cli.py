"""repro.bench.report CLI: --progress lines, partial output, exit codes."""

from __future__ import annotations

import pytest

from repro.bench import report
from repro.bench.harness import Table


def fake_table(title: str) -> Table:
    t = Table(
        title=title,
        paper_ref="test ref",
        machine="test machine",
        columns=("variant", "seconds"),
    )
    t.add(variant="orig", seconds=1.0)
    return t


@pytest.fixture
def patched_builders(monkeypatch):
    """Swap the real (minutes-long) table builders for instant fakes."""

    def use(builders):
        monkeypatch.setattr(report, "_builders", lambda scale: builders)

    return use


class TestBuildAll:
    def test_failure_is_collected_not_raised(self, patched_builders):
        def boom():
            raise RuntimeError("simulated table crash")

        patched_builders([("good", lambda: fake_table("good")), ("bad", boom)])
        tables, elapsed, failures = report.build_all(progress=False)
        assert [t.title for t in tables] == ["good"]
        assert len(failures) == 1
        assert failures[0][0] == "bad"
        assert "simulated table crash" in failures[0][1]

    def test_progress_lines(self, patched_builders, capsys):
        patched_builders([("T9 fake", lambda: fake_table("T9"))])
        report.build_all(progress=True)
        assert "T9 fake: done in" in capsys.readouterr().out


class TestMainExitCodes:
    def test_all_tables_ok_exits_zero(self, patched_builders, tmp_path, capsys):
        patched_builders([("only", lambda: fake_table("Only Table"))])
        path = tmp_path / "EXPERIMENTS.md"
        assert report.main([str(path)]) == 0
        text = path.read_text()
        assert "## Only Table" in text
        assert "| variant | seconds |" in text

    def test_failing_table_exits_nonzero_but_writes_survivors(
        self, patched_builders, tmp_path, capsys
    ):
        def boom():
            raise RuntimeError("simulated table crash")

        patched_builders(
            [("alive", lambda: fake_table("Alive")), ("dead", boom)]
        )
        path = tmp_path / "EXPERIMENTS.md"
        assert report.main(["--progress", str(path)]) == 1
        captured = capsys.readouterr()
        assert "alive: done in" in captured.out
        assert "dead: FAILED after" in captured.out
        assert "TABLE FAILED: dead" in captured.err
        assert "1 table(s) failed" in captured.err
        # the surviving table still landed on disk
        assert "## Alive" in path.read_text()
        assert "## dead" not in path.read_text()


class TestOnlyFilter:
    BUILDERS = [
        ("T1 convolution", lambda: fake_table("T1")),
        ("T5 Givens", lambda: fake_table("T5")),
    ]

    def test_select_builders_substring_case_insensitive(self, patched_builders):
        patched_builders(self.BUILDERS)
        assert [n for n, _ in report.select_builders(4, "t1")] == ["T1 convolution"]
        assert [n for n, _ in report.select_builders(4, "Givens")] == ["T5 Givens"]
        assert len(report.select_builders(4, None)) == 2

    def test_only_builds_the_subset(self, patched_builders, tmp_path, capsys):
        patched_builders(self.BUILDERS)
        path = tmp_path / "partial.md"
        assert report.main(["--only", "T1", str(path)]) == 0
        text = path.read_text()
        assert "## T1" in text and "## T5" not in text

    def test_only_refuses_default_output_path(self, patched_builders, capsys):
        patched_builders(self.BUILDERS)
        assert report.main(["--only", "T1"]) == 2
        assert "refusing to overwrite EXPERIMENTS.md" in capsys.readouterr().err

    def test_only_with_no_match_is_an_error(self, patched_builders, tmp_path, capsys):
        patched_builders(self.BUILDERS)
        assert report.main(["--only", "T9", str(tmp_path / "x.md")]) == 2
        err = capsys.readouterr().err
        assert "matches no table" in err
        assert "T1 convolution" in err  # the known names are listed


class TestObsFlag:
    def test_obs_writes_valid_metrics(self, patched_builders, tmp_path, capsys):
        import json

        from repro.artifacts import is_envelope, payload_of
        from repro.obs.export import validate_metrics

        patched_builders([("only", lambda: fake_table("Only"))])
        out_md = tmp_path / "exp.md"
        obs_path = tmp_path / "obs.json"
        assert report.main(["--obs", str(obs_path), str(out_md)]) == 0
        assert "obs metrics written to" in capsys.readouterr().out
        env = json.loads(obs_path.read_text())
        assert is_envelope(env)
        doc = payload_of(env)
        assert validate_metrics(doc) == []
        assert doc["meta"]["tool"] == "repro.bench.report"
