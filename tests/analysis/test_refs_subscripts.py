"""Reference collection and subscript decomposition."""

from repro.analysis.refs import collect_accesses, reads_in, writes_in
from repro.analysis.subscripts import analyze_subscript
from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import ArrayRef, Compare, Const, Min, Var


class TestCollect:
    def test_read_before_write_in_statement(self):
        l = do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") + 1.0))
        accs = collect_accesses((l,))
        assert [a.is_write for a in accs] == [False, True]
        assert accs[0].position == accs[1].position

    def test_subscript_reads_collected(self):
        # P(I) used as a subscript of A is itself a read
        l = do("I", 1, "N", assign(ref("A", ref("P", "I")), 1.0))
        arrays = [a.array for a in collect_accesses((l,))]
        assert arrays.count("P") == 1
        assert arrays.count("A") == 1

    def test_guards_recorded_with_polarity(self):
        l = do(
            "I", 1, "N",
            if_(
                Compare("gt", ref("B", "I"), Const(0.0)),
                [assign(ref("A", "I"), 1.0)],
                [assign(ref("C", "I"), 1.0)],
            ),
        )
        accs = collect_accesses((l,))
        a = next(x for x in accs if x.array == "A")
        c = next(x for x in accs if x.array == "C")
        assert len(a.guards) == 1
        from repro.ir.expr import Not

        assert isinstance(c.guards[0], Not)

    def test_loop_stack_outermost_first(self):
        nest = do("J", 1, "N", do("I", 1, "M", assign(ref("A", "I", "J"), 0.0)))
        acc = next(iter(collect_accesses((nest,))))
        assert acc.loop_vars == ("J", "I")
        assert acc.innermost().var == "I"

    def test_common_loops_by_identity(self):
        inner1 = do("I", 1, "N", assign(ref("A", "I"), 0.0))
        inner2 = do("I", 1, "N", assign(ref("B", "I"), 0.0))
        outer = do("J", 1, "N", inner1, inner2)
        accs = collect_accesses((outer,))
        a, b = accs[0], accs[1]
        assert [l.var for l in a.common_loops(b)] == ["J"]

    def test_filter_helpers(self):
        l = do("I", 1, "N", assign(ref("A", "I"), ref("B", "I")))
        assert [a.array for a in writes_in((l,))] == ["A"]
        assert [a.array for a in reads_in((l,), "B")] == ["B"]

    def test_bound_refs_optional(self):
        l = do("I", 1, ref("LIM", 1), assign(ref("A", "I"), 0.0))
        default = [a.array for a in collect_accesses((l,))]
        assert "LIM" not in default
        with_bounds = [a.array for a in collect_accesses((l,), include_bound_refs=True)]
        assert "LIM" in with_bounds


class TestSubscripts:
    def test_affine_decomposition(self):
        info = analyze_subscript(Var("I") * 2 + Var("N") - 3, ("I", "J"))
        assert info.affine
        assert info.coeffs == (2, 0)
        assert info.rest.coeff("N") == 1
        assert info.rest.const == -3

    def test_classifiers(self):
        assert analyze_subscript(Var("N") + 1, ("I",)).is_constant
        assert analyze_subscript(Var("I") + 1, ("I", "J")).single_index == 0
        assert analyze_subscript(Var("I") + Var("J"), ("I", "J")).single_index is None

    def test_coeff_of(self):
        info = analyze_subscript(Var("J") * 3, ("I", "J"))
        assert info.coeff_of("J") == 3
        assert info.coeff_of("I") == 0
        assert info.coeff_of("Z") == 0

    def test_non_affine_flagged(self):
        info = analyze_subscript(Min((Var("I"), Var("N"))), ("I",))
        assert not info.affine
        info2 = analyze_subscript(ArrayRef("P", (Var("I"),)), ("I",))
        assert not info2.affine
