"""Regression tests for soundness bugs found while deriving block LU.

Each test encodes a precise failure mode that once produced either a
*wrong* transformation (unsound) or a *missed* one (incomplete); they pin
the corrected behaviour.
"""

from repro.analysis.context import context_for_path
from repro.analysis.feasibility import direction_feasible
from repro.analysis.graph import DependenceGraph
from repro.analysis.refs import collect_accesses
from repro.ir.build import assign, do, ref
from repro.ir.expr import Min, Var
from repro.ir.stmt import ArrayDecl, Loop, Procedure
from repro.ir.visit import loop_by_var
from repro.symbolic.assume import Assumptions


def strip_mined_lu():
    """Point LU with the K loop strip-mined (the Sec. 5.1 starting point)."""
    from repro.algorithms import lu_point_ir
    from repro.transform.stripmine import strip_mine

    p = lu_point_ir()
    proc, _ = strip_mine(p, loop_by_var(p.body, "K"), "KS")
    return proc


class TestContextFactScoping:
    """FM context facts are per-iteration relations.

    The bug: the fact ``KK <= J-1`` (derived from J's loop bound
    ``J >= KK+1``) leaked onto the *sink copy* ``KK'`` with the *source's*
    ``J``, "proving" the real dependence update->scale impossible — which
    let the driver distribute pivoted LU without commutativity knowledge
    and produce wrong code.
    """

    def test_update_to_scale_flow_is_feasible(self):
        proc = strip_mined_lu()
        kk = loop_by_var(proc.body, "KK")
        base = Assumptions().assume_ge("N", 2).assume_ge("KS", 2)
        ctx = context_for_path(proc, kk, base)
        accs = [a for a in collect_accesses(proc) if a.array == "A"]
        upd_w = next(a for a in accs if a.is_write and a.ref.index == (Var("I"), Var("J")))
        scale_r = next(
            a
            for a in accs
            if not a.is_write
            and a.ref.index == (Var("I"), Var("KK"))
            and a.stmt.target.index == (Var("I"), Var("KK"))
        )
        common = upd_w.common_loops(scale_r)
        # update at block-iteration kk writes column J=kk'; scale at kk'>kk
        # reads it: the KK-carried flow is REAL and must stay feasible
        kk_pos = next(k for k, l in enumerate(common) if l is kk)
        dirs = ["="] * kk_pos + ["<"] + ["*"] * (len(common) - kk_pos - 1)
        assert direction_feasible(upd_w, scale_r, dirs, common, ctx)

    def test_recurrence_detected_before_split(self):
        proc = strip_mined_lu()
        kk = loop_by_var(proc.body, "KK")
        base = Assumptions().assume_ge("N", 2).assume_ge("KS", 2)
        g = DependenceGraph(proc, context_for_path(proc, kk, base))
        comps = g.recurrence_components(kk)
        # scale and update form one recurrence until the J split
        assert any(len(c) == 2 for c in comps)
        assert g.preventing_dependences(kk)


class TestSiblingLoopContexts:
    """Same-named sibling loops (from index-set splitting) must never be
    merged into one assumption context — that once made the context claim
    ``I >= IMAX`` and ``I <= IMAX-1`` simultaneously, "proving" anything.
    """

    def test_contradictory_siblings_isolated(self):
        a = do("I", Var("P"), Var("P"), assign(ref("A", "I"), 0.0))
        b = do("I", Var("P") + 1, "N", assign(ref("A", "I"), 1.0))
        proc = Procedure("p", ("N", "P"), (ArrayDecl("A", (Var("N"),)),), (a, b))
        ctx_b = context_for_path(proc, b)
        # from b's path alone: I >= P+1; the sibling's I <= P must not leak
        assert ctx_b.compare(Var("I"), Var("P")) == ">"


class TestOrientationFiltering:
    """'*'-leading dependences are emitted in both orientations by the
    pair test; the statement graph must drop orientations the iteration
    space cannot realize — otherwise false cycles block distribution
    (block LU stalls), and with an unsound filter real cycles vanish
    (pivoted LU distributes illegally).  Both directions pinned here.
    """

    def test_false_reverse_edge_dropped_after_split(self):
        """After the J split, trailing-update writes (cols >= K+KS) cannot
        flow *backward* into the panel (cols <= K+KS-1) within a K
        iteration: the distribution graph must be acyclic."""
        from repro.algorithms import lu_point_ir
        from repro.transform.blocking import block_loop

        base = Assumptions().assume_ge("N", 2)
        out, report = block_loop(lu_point_ir(), "K", "KS", ctx=base)
        assert report.blocked_innermost == 1  # distribution succeeded

    def test_real_reverse_edge_kept_for_pivoting(self):
        """In pivoted LU the row-swap reads ALL columns, so the update's
        writes genuinely flow into later swaps: without commutativity the
        KK loop must remain one recurrence (no illegal distribution)."""
        from repro.algorithms import lu_pivot_point_ir
        from repro.blockability import Verdict, classify

        res = classify(
            lu_pivot_point_ir(),
            "K",
            "KS",
            ctx=Assumptions().assume_ge("N", 2),
            allow_commutativity=False,
        )
        assert res.verdict == Verdict.NOT_BLOCKABLE


class TestMinMaxBoundReasoning:
    """MIN in a lower bound is a disjunction: FM must enumerate the arms
    (dropping them once made J's lower bound invisible and refused the
    legal KK interchange); simplify must prune dominated MAX arms using
    arm-wise proofs (MAX(KK+1, MIN(K+KS, N)) -> MIN(K+KS, N))."""

    def test_max_arm_pruning_with_min_rhs(self):
        from repro.symbolic.simplify import simplify
        from repro.ir.expr import Max

        ctx = (
            Assumptions()
            .assume_ge("KS", 2)
            .assume_range("KK", Var("K"), Var("K") + Var("KS") - 1)
            .assume_le("KK", Var("N") - 1)
        )
        e = Max((Var("KK") + 1, Min((Var("K") + Var("KS"), Var("N")))))
        assert simplify(e, ctx) == Min((Var("K") + Var("KS"), Var("N")))

    def test_distributing_arithmetic_into_min(self):
        """prove_lt(MIN(a,b), MIN(a,b)+1) needs +1 pushed into the arms."""
        from repro.symbolic.simplify import prove_lt, simplify
        from repro.ir.expr import BinOp, Const

        m = Min((Var("X"), Var("Y")))
        bumped = simplify(BinOp("+", m, Const(1)))
        assert prove_lt(m, bumped, Assumptions())
