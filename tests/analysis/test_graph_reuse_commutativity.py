"""Dependence graph/recurrences, reuse classification, commutativity."""

import pytest

from repro.analysis.commutativity import (
    ColumnUpdate,
    RowInterchange,
    match_column_update,
    match_row_interchange,
    operations_commute,
)
from repro.analysis.context import context_for_loops, context_for_path
from repro.analysis.graph import DependenceGraph
from repro.analysis.refs import RefAccess, collect_accesses
from repro.analysis.reuse import (
    ReuseKind,
    classify_reuse,
    choose_block_factor,
    estimate_block_footprint,
    reuse_report,
)
from repro.ir.build import assign, do, if_, ref
from repro.ir.expr import Const, Min, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import loop_by_var
from repro.machine.cache import CacheConfig
from repro.machine.model import MachineModel
from repro.symbolic.assume import Assumptions


class TestRecurrences:
    def test_sec33_recurrence_components(self):
        s1 = assign(ref("T", "II"), ref("A", "II"))
        s2 = do("K", "II", "N", assign(ref("A", "K"), ref("A", "K") + ref("T", "II")))
        ii = do("II", "I", Var("I") + Var("IS") - 1, s1, s2)
        proc = Procedure(
            "p", ("N", "IS"),
            (ArrayDecl("A", (Var("N"),)), ArrayDecl("T", (Var("N"),))),
            (do("I", 1, "N", ii, step="IS"),),
        )
        g = DependenceGraph(proc)
        comps = g.recurrence_components(ii)
        assert [len(c) for c in comps] == [2]
        assert g.preventing_dependences(ii)

    def test_independent_statements_split(self):
        l = do(
            "I", 1, "N",
            assign(ref("A", "I"), 1.0),
            assign(ref("B", "I"), 2.0),
        )
        g = DependenceGraph((l,))
        comps = g.recurrence_components(l)
        assert [len(c) for c in comps] == [1, 1]

    def test_scalar_flow_edges(self):
        l = do(
            "I", 1, "N",
            assign("T", ref("A", "I")),
            assign(ref("B", "I"), Var("T")),
        )
        g = DependenceGraph((l,))
        sg = g.statement_graph(l)
        scalar_edges = [(u, v) for u, v, d in sg.edges(data=True) if "scalar" in d]
        assert (0, 1) in scalar_edges

    def test_self_redefined_scalar_not_exposed(self):
        # A1 is written before read inside the second statement: no edge
        l = do(
            "I", 1, "N",
            assign("A1", ref("A", "I")),
            do("K", 1, "N", assign("A1", ref("B", "K")), assign(ref("C", "K"), Var("A1"))),
        )
        g = DependenceGraph((l,))
        sg = g.statement_graph(l)
        scalar_edges = [(u, v) for u, v, d in sg.edges(data=True) if "scalar" in d]
        assert (0, 1) not in scalar_edges


class TestContext:
    def test_path_context_ignores_siblings(self):
        a = do("I", 1, 4, assign(ref("A", "I"), 0.0))
        b = do("I", 10, 20, assign(ref("A", "I"), 1.0))
        proc = Procedure("p", (), (ArrayDecl("A", (Const(32),)),), (a, b))
        ctx = context_for_path(proc, b)
        assert ctx.lower_bound("I") == 10
        merged = context_for_loops(proc)
        # merged context is inconsistent by construction — documented hazard
        assert merged.upper_bound("I") == 4

    def test_mod_lower_bound_stripped(self):
        from repro.ir.expr import Call

        l = do("I", Var("L") + Call("MOD", (Var("N"), Const(4))), "N", assign(ref("A", "I"), 0.0))
        proc = Procedure("p", ("N", "L"), (ArrayDecl("A", (Var("N"),)),), (l,))
        ctx = context_for_path(proc, l, Assumptions().assume_ge("L", 5))
        assert ctx.compare(Var("I"), Var("L")) in (">", ">=")


class TestReuse:
    def vec(self):
        return do("I", 1, "M", assign(ref("A", "I"), ref("A", "I") + ref("B", "J")))

    def test_classification(self):
        accs = collect_accesses((self.vec(),))
        b = next(a for a in accs if a.array == "B")
        a_ref = next(a for a in accs if a.array == "A")
        assert classify_reuse(b, "I") == ReuseKind.TEMPORAL_INVARIANT
        assert classify_reuse(a_ref, "I") == ReuseKind.SPATIAL
        assert classify_reuse(b, "J") == ReuseKind.SPATIAL  # B(J) moves with J... stride 1

    def test_temporal_carried(self):
        l = do("I", 6, "N", assign(ref("A", "I"), ref("A", Var("I") - 5)))
        acc = next(a for a in collect_accesses((l,)) if not a.is_write)
        assert classify_reuse(acc, "I") == ReuseKind.TEMPORAL_CARRIED

    def test_report(self):
        outer = do("J", 1, "N", self.vec())
        rep = reuse_report(outer)
        assert rep.loop_var == "J"
        assert rep.count(ReuseKind.TEMPORAL_INVARIANT) >= 2  # A(I) twice
        assert rep.has_blockable_reuse

    def test_footprint_grows_with_block(self):
        outer = do("J", 1, "N", self.vec())
        fp2 = estimate_block_footprint(outer, {"N": 64, "M": 64}, 2)
        fp8 = estimate_block_footprint(outer, {"N": 64, "M": 64}, 8)
        assert fp8 > fp2

    def test_choose_block_factor_monotone_in_cache(self):
        outer = do("J", 1, "N", self.vec())
        small = MachineModel("s", CacheConfig(512, 32, 2))
        big = MachineModel("b", CacheConfig(8192, 32, 2))
        bs = choose_block_factor(outer, {"N": 64, "M": 64}, small)
        bb = choose_block_factor(outer, {"N": 64, "M": 64}, big)
        assert bb >= bs >= 2


class TestCommutativityMatchers:
    def swap_loop(self):
        return do(
            "J", 1, "N",
            assign("TAU", ref("A", "K", "J")),
            assign(ref("A", "K", "J"), ref("A", "IMAX", "J")),
            assign(ref("A", "IMAX", "J"), "TAU"),
        )

    def update_nest(self):
        return do(
            "J", Var("K") + 1, "N",
            do("I", Var("K") + 1, "N",
               assign(ref("A", "I", "J"),
                      ref("A", "I", "J") - ref("A", "I", "K") * ref("A", "K", "J"))),
        )

    def test_row_interchange_matched(self):
        got = match_row_interchange(self.swap_loop())
        assert isinstance(got, RowInterchange)
        assert got.row_a == Var("K") and got.row_b == Var("IMAX")

    def test_row_interchange_rejects_wrong_body(self):
        l = do("J", 1, "N", assign(ref("A", "K", "J"), 0.0))
        assert match_row_interchange(l) is None
        # swap whose row index uses J is not a whole-row interchange
        bad = do(
            "J", 1, "N",
            assign("TAU", ref("A", "J", "J")),
            assign(ref("A", "J", "J"), ref("A", "IMAX", "J")),
            assign(ref("A", "IMAX", "J"), "TAU"),
        )
        assert match_row_interchange(bad) is None

    def test_column_update_matched(self):
        got = match_column_update(self.update_nest())
        assert isinstance(got, ColumnUpdate)
        assert got.pivot_row == Var("K")

    def test_column_scale_matched(self):
        scale = do(
            "I", Var("K") + 1, "N",
            assign(ref("A", "I", "K"), ref("A", "I", "K") / ref("A", "K", "K")),
        )
        got = match_column_update(scale)
        assert isinstance(got, ColumnUpdate)

    def test_commutes_only_across_kinds_same_array(self):
        ri = match_row_interchange(self.swap_loop())
        cu = match_column_update(self.update_nest())
        assert operations_commute(ri, cu)
        assert operations_commute(cu, ri)
        assert not operations_commute(ri, ri)
        other = ColumnUpdate("B", Var("K"), self.update_nest())
        assert not operations_commute(ri, other)
