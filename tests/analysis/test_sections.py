"""Bounded regular section analysis."""

from repro.analysis.refs import collect_accesses
from repro.analysis.sections import (
    Section,
    Triplet,
    expr_range,
    ranges_for_loops,
    section_contains,
    section_disjoint,
    section_equal,
    section_intersect,
    section_of_ref,
    section_union_hull,
)
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Min, Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.ir.visit import loop_by_var
from repro.symbolic.assume import Assumptions


class TestExprRange:
    def test_simple_variable(self):
        lo, hi = expr_range(Var("I"), {"I": (Const(1), Var("N"))})
        assert (lo, hi) == (Const(1), Var("N"))

    def test_negative_coefficient_swaps(self):
        lo, hi = expr_range(Const(10) - Var("I"), {"I": (Const(1), Const(4))})
        assert (lo, hi) == (Const(6), Const(9))

    def test_chained_ranges_inner_first(self):
        # K in [II, N], II in [I, I+IS-1]: K spans [I, N]
        ranges = {"K": (Var("II"), Var("N")), "II": (Var("I"), Var("I") + Var("IS") - 1)}
        lo, hi = expr_range(Var("K"), ranges)
        assert lo == Var("I")
        assert hi == Var("N")

    def test_min_bound_propagates(self):
        ranges = {"J": (Const(1), Min((Var("I"), Var("N"))))}
        lo, hi = expr_range(Var("J"), ranges)
        assert isinstance(hi, Min)

    def test_unanalyzable_returns_none(self):
        from repro.ir.expr import ArrayRef

        assert expr_range(ArrayRef("P", (Var("I"),)), {"I": (Const(1), Const(3))}) is None


class TestSectionOfRef:
    def make(self):
        """The Sec. 5.1 strip-mined LU skeleton."""
        kk_hi = Min((Var("K") + Var("KS") - 1, Var("N") - 1))
        scale = do(
            "I", Var("KK") + 1, "N",
            assign(ref("A", "I", "KK"), ref("A", "I", "KK") / ref("A", "KK", "KK")),
        )
        update = do(
            "J", Var("KK") + 1, "N",
            do("I", Var("KK") + 1, "N",
               assign(ref("A", "I", "J"),
                      ref("A", "I", "J") - ref("A", "I", "KK") * ref("A", "KK", "J"))),
        )
        kk = do("KK", "K", kk_hi, scale, update)
        proc = Procedure(
            "lu", ("N", "KS"), (ArrayDecl("A", (Var("N"), Var("N"))),),
            (do("K", 1, Var("N") - 1, kk, step="KS"),),
        )
        return proc, kk

    def test_figure5_sections(self):
        """Figure 5: stmt 20 touches the panel, stmt 10 the trailing part."""
        proc, kk = self.make()
        ctx = Assumptions().assume_ge("KS", 2).assume_ge("K", 1)
        accs = collect_accesses(proc)
        scale_w = next(a for a in accs if a.is_write and a.ref.index == (Var("I"), Var("KK")))
        upd_w = next(a for a in accs if a.is_write and a.ref.index == (Var("I"), Var("J")))
        s20 = section_of_ref(scale_w, kk, ctx)
        s10 = section_of_ref(upd_w, kk, ctx)
        # rows: both K+1..N
        assert s20.dims[0].lo == Var("K") + 1
        assert s10.dims[0].lo == Var("K") + 1
        # columns: panel vs K+1..N
        assert s20.dims[1].lo == Var("K")
        assert s10.dims[1].hi == Var("N")
        inter = section_intersect(s20, s10, ctx)
        union = section_union_hull(s20, s10, ctx)
        assert section_equal(inter, union, ctx) is not True

    def test_region_defaults_to_whole_stack(self):
        proc, kk = self.make()
        accs = collect_accesses(proc)
        upd_w = next(a for a in accs if a.is_write and a.ref.index == (Var("I"), Var("J")))
        s = section_of_ref(upd_w)  # over K too
        assert s.dims[1].hi == Var("N")

    def test_pretty(self):
        s = Section("A", (Triplet(Const(1), Var("N")), Triplet(Var("K"), Var("K"))))
        assert s.pretty() == "A(1:N, K:K)"

    def test_stride_recorded(self):
        l = do("I", 1, "N", assign(ref("A", Var("I") * 2), 0.0))
        acc = next(a for a in collect_accesses((l,)) if a.is_write)
        s = section_of_ref(acc)
        assert s.dims[0].step == Const(2)


class TestAlgebra:
    def setup_method(self):
        self.ctx = Assumptions().assume_ge("KS", 2).assume_le(
            Var("K") + Var("KS"), Var("N")
        ).assume_ge("K", 1)

    def tri(self, lo, hi):
        return Section("A", (Triplet(lo, hi),))

    def test_contains(self):
        big = self.tri(Var("K"), Var("N"))
        small = self.tri(Var("K") + 1, Var("K") + Var("KS") - 1)
        assert section_contains(big, small, self.ctx) is True
        assert section_contains(small, big, self.ctx) is False

    def test_disjoint(self):
        a = self.tri(Var("K"), Var("K") + Var("KS") - 1)
        b = self.tri(Var("K") + Var("KS"), Var("N"))
        assert section_disjoint(a, b, self.ctx) is True
        assert section_disjoint(a, a, self.ctx) is False

    def test_disjoint_different_arrays(self):
        assert section_disjoint(self.tri(Const(1), Const(2)), Section("B", (Triplet(Const(1), Const(2)),))) is True

    def test_unknown_is_none(self):
        a = self.tri(Var("P"), Var("Q"))
        b = self.tri(Var("R"), Var("S"))
        assert section_disjoint(a, b, self.ctx) is None
        assert section_contains(a, b, self.ctx) is None

    def test_intersect_union_hull(self):
        a = self.tri(Var("K"), Var("K") + Var("KS") - 1)
        b = self.tri(Var("K") + 1, Var("N"))
        inter = section_intersect(a, b, self.ctx)
        union = section_union_hull(a, b, self.ctx)
        assert inter.dims[0].lo == Var("K") + 1
        assert inter.dims[0].hi == Var("K") + Var("KS") - 1
        assert union.dims[0].lo == Var("K")
        assert union.dims[0].hi == Var("N")

    def test_equal(self):
        a = self.tri(Var("K"), Var("N"))
        assert section_equal(a, a, self.ctx) is True
        assert section_equal(a, self.tri(Var("K") + 1, Var("N")), self.ctx) is False
