"""Dependence testing: classic cases plus the paper's own examples."""

from repro.analysis.dependence import DependenceKind, all_dependences, dependences_between
from repro.analysis.refs import collect_accesses
from repro.ir.build import assign, do, ref
from repro.ir.expr import Var
from repro.ir.stmt import ArrayDecl, Procedure
from repro.symbolic.assume import Assumptions


def deps_of(body, **kw):
    return all_dependences(body, **kw)


def find(deps, kind=None, array=None):
    out = deps
    if kind:
        out = [d for d in out if d.kind == kind]
    if array:
        out = [d for d in out if d.array == array]
    return out


class TestStrongSIV:
    def test_carried_flow_with_distance(self):
        # A(I) = A(I-5) + ...: flow distance 5 (the Sec. 2.2 example)
        l = do("I", 1, "N", assign(ref("A", "I"), ref("A", Var("I") - 5) + 1.0))
        deps = find(deps_of((l,)), DependenceKind.FLOW, "A")
        assert len(deps) == 1
        assert deps[0].distance == (5,)
        assert deps[0].direction == ("<",)
        assert deps[0].carrier.var == "I"

    def test_distance_exceeding_trip_count_refuted(self):
        l = do("I", 1, 4, assign(ref("A", "I"), ref("A", Var("I") - 5) + 1.0))
        assert not find(deps_of((l,)), DependenceKind.FLOW, "A")

    def test_loop_independent_antidependence(self):
        # A(I) = A(I) + 1: read happens before write in the same iteration
        l = do("I", 1, "N", assign(ref("A", "I"), ref("A", "I") + 1.0))
        deps = find(deps_of((l,)), DependenceKind.ANTI, "A")
        assert len(deps) == 1
        assert deps[0].loop_independent

    def test_constant_offset_independence(self):
        # A(2I) and A(2I+1): even vs odd elements (GCD refutes)
        l = do(
            "I",
            1,
            "N",
            assign(ref("A", Var("I") * 2), ref("A", Var("I") * 2 + 1) + 1.0),
        )
        assert not find(deps_of((l,)), DependenceKind.FLOW, "A")
        assert not find(deps_of((l,)), DependenceKind.ANTI, "A")


class TestZIVAndSymbolic:
    def test_distinct_constants_independent(self):
        body = (assign(ref("A", 1), 1.0), assign(ref("A", 2), 2.0))
        assert not deps_of(body)

    def test_same_constant_dependent(self):
        body = (assign(ref("A", 1), 1.0), assign(ref("A", 1), 2.0))
        deps = find(deps_of(body), DependenceKind.OUTPUT)
        assert len(deps) == 1

    def test_symbolic_offset_refuted_with_context(self):
        # A(K) vs A(K+OFF) with OFF >= 1 proven
        body = (assign(ref("A", "K"), 1.0), assign(ref("A", Var("K") + Var("OFF")), 2.0))
        ctx = Assumptions().assume_ge("OFF", 1)
        assert not deps_of(body, ctx=ctx)
        assert deps_of(body)  # without the fact: conservative dependence


class TestUnconstrainedLoops:
    def test_loop_not_in_subscript_gets_star(self):
        # A(I) inside a J loop: any J distance can re-touch the element
        nest = do("J", 1, "N", do("I", 1, "M", assign(ref("A", "I"), ref("A", "I") + ref("B", "J"))))
        flows = find(deps_of((nest,)), DependenceKind.FLOW, "A")
        assert flows, "flow dep on A must exist"
        assert any(d.direction[0] == "*" for d in flows)

    def test_input_deps_only_on_request(self):
        nest = do("I", 1, "N", assign(ref("A", "I"), ref("B", "I") + ref("B", "I")))
        assert not find(deps_of((nest,)), DependenceKind.INPUT)
        got = find(deps_of((nest,), include_input=True), DependenceKind.INPUT, "B")
        assert got


class TestPaperSec33:
    """The Sec. 3.3 recurrence: distance abstractions must report it."""

    def setup_method(self):
        s1 = assign(ref("T", "II"), ref("A", "II"))
        s2 = do("K", "II", "N", assign(ref("A", "K"), ref("A", "K") + ref("T", "II")))
        self.ii = do("II", "I", Var("I") + Var("IS") - 1, s1, s2)
        self.proc = Procedure(
            "p",
            ("N", "IS"),
            (ArrayDecl("A", (Var("N"),)), ArrayDecl("T", (Var("N"),))),
            (do("I", 1, "N", self.ii, step="IS"),),
        )

    def test_backward_flow_reported(self):
        deps = deps_of(self.proc)
        back = [
            d
            for d in find(deps, DependenceKind.FLOW, "A")
            if d.source.ref.index == (Var("K"),) and d.sink.ref.index == (Var("II"),)
        ]
        assert back, "the blocking-preventing recurrence must be visible"

    def test_range_refutation_after_split_relative_to_ii(self):
        # K restricted to I+IS..N makes the sections disjoint *within one
        # iteration of I* — which is the question distribution of II asks.
        # (Across different I iterations the elements genuinely can
        # collide, so the full-nest dependence must remain.)
        s1 = assign(ref("T", "II"), ref("A", "II"))
        s2 = do(
            "K",
            Var("I") + Var("IS"),
            "N",
            assign(ref("A", "K"), ref("A", "K") + ref("T", "II")),
        )
        ii = do("II", "I", Var("I") + Var("IS") - 1, s1, s2)
        proc = self.proc.with_body((do("I", 1, "N", ii, step="IS"),))
        accs = [a for a in collect_accesses(proc) if a.array == "A"]
        a_ii = next(a for a in accs if a.ref.index == (Var("II"),))
        a_k = next(a for a in accs if a.ref.index == (Var("K"),) and a.is_write)
        ctx = Assumptions().assume_ge("IS", 1)
        rel = dependences_between(a_k, a_ii, ctx=ctx, within=ii)
        assert not rel, "relative to II, the split sections are disjoint"
        assert dependences_between(a_k, a_ii, ctx=ctx), "full-nest dep remains"


class TestOrientation:
    def test_source_executes_first_textually(self):
        body = (assign(ref("A", "K"), 1.0), assign("X", ref("A", "K")))
        l = do("K", 1, "N", *body)
        flows = find(deps_of((l,)), DependenceKind.FLOW, "A")
        assert flows and flows[0].source.is_write

    def test_negative_leading_distance_is_flipped(self):
        # write A(I), read A(I+3): the read at iteration i touches what the
        # write touches at iteration i+3 -> anti dep, distance 3
        l = do("I", 1, "N", assign(ref("A", "I"), ref("A", Var("I") + 3)))
        deps = find(deps_of((l,)), DependenceKind.ANTI, "A")
        assert len(deps) == 1
        assert deps[0].distance == (3,)

    def test_describe_is_printable(self):
        l = do("I", 1, "N", assign(ref("A", "I"), ref("A", Var("I") - 1)))
        for d in deps_of((l,)):
            assert "dep on A" in d.describe()


class TestWithin:
    def test_relative_view_truncates_outer_loops(self):
        inner = do("I", 1, "M", assign(ref("A", "I"), ref("A", "I") + 1.0))
        nest = do("J", 1, "N", inner)
        accs = [a for a in collect_accesses((nest,)) if a.array == "A"]
        full = dependences_between(accs[0], accs[1])
        rel = dependences_between(accs[0], accs[1], within=inner)
        assert all(len(d.direction) == 2 for d in full)
        assert all(len(d.direction) == 1 for d in rel)
