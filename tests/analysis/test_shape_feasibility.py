"""Iteration-space shape classification and FM feasibility."""

from repro.analysis.feasibility import direction_feasible, feasible
from repro.analysis.refs import collect_accesses
from repro.analysis.shape import LoopShape, classify_loop_shape
from repro.ir.build import assign, do, ref
from repro.ir.expr import Const, Max, Min, Var
from repro.symbolic.affine import Affine
from repro.symbolic.assume import Assumptions


def inner(lo, hi):
    return do("J", lo, hi, assign(ref("A", "J"), 0.0))


class TestShapes:
    def test_rectangular(self):
        s = classify_loop_shape(inner(1, "N"), "I")
        assert s.kind == LoopShape.RECTANGULAR

    def test_triangular_lower(self):
        s = classify_loop_shape(inner(Var("I") + 1, "N"), "I")
        assert s.kind == LoopShape.TRIANGULAR_LO
        assert (s.lo.alpha, s.lo.beta) == (1, Const(1))

    def test_triangular_upper_with_slope(self):
        s = classify_loop_shape(inner(1, Var("I") * 2 + 3), "I")
        assert s.kind == LoopShape.TRIANGULAR_HI
        assert (s.hi.alpha, s.hi.beta) == (2, Const(3))

    def test_negative_slope(self):
        s = classify_loop_shape(inner(Var("N") - Var("I"), "M"), "I")
        assert s.kind == LoopShape.TRIANGULAR_LO
        assert s.lo.alpha == -1

    def test_trapezoidal_min(self):
        s = classify_loop_shape(inner("L", Min((Var("I") + Var("N2"), Var("N1")))), "I")
        assert s.kind == LoopShape.TRAPEZOIDAL_MIN
        assert s.hi.invariant_arms == (Var("N1"),)

    def test_trapezoidal_max(self):
        s = classify_loop_shape(inner(Max((Var("I") - Var("N2"), Const(1))), "N1"), "I")
        assert s.kind == LoopShape.TRAPEZOIDAL_MAX

    def test_rhomboidal(self):
        s = classify_loop_shape(inner(Var("I"), Var("I") + Var("N2")), "I")
        assert s.kind == LoopShape.RHOMBOIDAL
        assert s.lo.alpha == s.hi.alpha == 1

    def test_mismatched_slopes_unknown(self):
        s = classify_loop_shape(inner(Var("I"), Var("I") * 2), "I")
        assert s.kind == LoopShape.UNKNOWN

    def test_nonunit_step_unknown(self):
        l = do("J", 1, "N", assign(ref("A", "J"), 0.0), step=2)
        assert classify_loop_shape(l, "I").kind == LoopShape.UNKNOWN


class TestFMCore:
    def a(self, coeffs, const=0):
        return Affine.make(coeffs, const)

    def test_trivial(self):
        assert feasible([self.a({}, 0)])
        assert not feasible([self.a({}, -1)])

    def test_single_variable_window(self):
        # 1 <= x <= 5 and x >= 7: infeasible
        cons = [self.a({"x": 1}, -1), self.a({"x": -1}, 5), self.a({"x": 1}, -7)]
        assert not feasible(cons)

    def test_chain(self):
        # x < y, y < z, z < x: infeasible
        cons = [
            self.a({"y": 1, "x": -1}, -1),
            self.a({"z": 1, "y": -1}, -1),
            self.a({"x": 1, "z": -1}, -1),
        ]
        assert not feasible(cons)

    def test_satisfiable_system(self):
        cons = [self.a({"x": 1}, -1), self.a({"y": 1, "x": -1}), self.a({"y": -1}, 100)]
        assert feasible(cons)


class TestDirectionFeasible:
    def test_triangular_coupling_blocks_violation(self):
        """The Fig. 6 legality fact: with I >= KK+1, a dependence with
        KK '<' and I '>' between A(I,J) writes and A(KK,J) reads cannot
        exist — the hull says otherwise, the true space knows better."""
        upd = do(
            "J", 1, "N",
            do("I", Var("KK") + 1, "N",
               assign(ref("A", "I", "J"),
                      ref("A", "I", "J") - ref("A", "I", "KK") * ref("A", "KK", "J"))),
        )
        kk = do("KK", "K", Min((Var("K") + Var("KS") - 1, Var("N") - 1)), upd)
        accs = collect_accesses((kk,))
        w = next(a for a in accs if a.is_write)
        r = next(a for a in accs if a.ref.index == (Var("KK"), Var("J")))
        common = w.common_loops(r)
        ctx = Assumptions().assume_ge("KS", 2).assume_ge("K", 1)
        dirs_bad = ["<", "=", ">"]  # carried by KK, reversed on I
        assert not direction_feasible(w, r, dirs_bad, common, ctx)
        # while the forward-carried direction is of course possible
        assert direction_feasible(w, r, ["<", "=", "*"], common, ctx)

    def test_disjunctive_min_lower_bound(self):
        """A MIN *lower* bound is a disjunction; the arm enumeration must
        still refute impossible equalities (the J >= MIN(K+KS, N) case)."""
        j2 = do(
            "J", Min((Var("K") + Var("KS"), Var("N"))), "N",
            do("I", Var("K") + 1, "N",
               do("KK", "K", Min((Var("I") - 1, Var("K") + Var("KS") - 1)),
                  assign(ref("A", "I", "J"),
                         ref("A", "I", "J") - ref("A", "I", "KK") * ref("A", "KK", "J")))),
        )
        accs = collect_accesses((j2,))
        w = next(a for a in accs if a.is_write)
        mult = next(a for a in accs if a.ref.index == (Var("I"), Var("KK")))
        common = w.common_loops(mult)
        ctx = Assumptions().assume_ge("KS", 2).assume_ge("K", 1).assume_ge("N", 2)
        # same iteration of every loop: the write column J >= MIN(K+KS,N)
        # can never equal the multiplier column KK <= MIN(K+KS-1, N-1)
        dirs = ["="] * len(common)
        assert not direction_feasible(w, mult, dirs, common, ctx)
